"""Command-line interface: ``python -m repro`` / ``repro-lca``.

Subcommands
-----------
``solve``       solve a generated instance with the reference solvers;
``lca``         answer membership queries with LCA-KP;
``trace``       run one LCA query (or a sharded batch) under the tracer,
                print its span tree and verify the phase partition;
                ``--chrome`` also exports Chrome trace-event JSON
                (load it in Perfetto / chrome://tracing);
``metrics``     run a small workload, dump the metrics registry as JSON;
                ``--prom`` also writes the Prometheus text exposition;
``top``         live terminal view of a running endpoint: poll
                ``{"op": "metrics"}``/``{"op": "timeline"}`` on a
                ``loadgen --listen`` server (``--connect HOST:PORT``)
                or a self-spawned one, render counters and
                queue/brownout sparklines, refreshing in place;
``flightrec``   replay a seeded faulty workload, print the flight-recorder
                timeline, write a deterministic events/v1 document;
``obs-diff``    compare two bench documents (or a fresh quick run,
                reconstructed from the baseline's own ``context`` block,
                against a committed one) and flag perf regressions;
``serve``       serve a query batch through the KnapsackService engine;
``loadgen``     drive the service with seeded open-loop load across an
                offered-rate sweep, report tail latency and the
                saturation knee, write a bench-load/v1 document;
``overload``    grade the overload governor: calibrate the knee, then
                compare brownout on/off past it (deadline admission,
                degradation ladder), write a bench-overload/v1 document
                (non-zero exit when the governed availability floor is
                missed or brownout buys nothing);
``bench``       measure serving throughput, write BENCH_serve.json;
``bench-cold``  measure cold-pipeline latency (columnar vs object path),
                write BENCH_cold.json; ``--sweep`` adds an n-axis sweep;
``bench-shm``   measure process-shard scaling with the shared-memory
                instance tier (pickled vs zero-copy payloads, worker RSS,
                spin-up time), write BENCH_shm.json;
``shm-stats``   dump shared-memory tier lifecycle counters and scan for
                orphaned segments (non-zero exit when any are found);
``chaos``       run a seeded fault-injection sweep, assert availability,
                write a deterministic chaos-report/v1 document;
``experiment``  run one of the E1-E11 experiments and print its table;
``demo``        the Figure 1 reduction, walked end to end;
``families``    list the workload generator families.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .access.oracle import QueryOracle
from .access.weighted_sampler import WeightedSampler
from .analysis import experiments as exps
from .analysis.tables import format_row_dicts, format_table
from .core.lca_kp import LCAKP
from .knapsack import FAMILIES, generate
from .knapsack.solvers import (
    fractional_upper_bound,
    half_approximation,
    prefix_greedy,
    solve_exact,
)
from .lowerbounds.or_reduction import BitOracle, ORReduction

EXPERIMENTS = {
    "thm32": exps.exp_thm32_or_lower_bound,
    "thm33": exps.exp_thm33_approx_lower_bound,
    "thm34": exps.exp_thm34_maximal_lower_bound,
    "thm41-approx": exps.exp_thm41_approximation,
    "thm41-consistency": exps.exp_thm41_consistency,
    "thm41-scaling": exps.exp_thm41_query_scaling,
    "thm41-epsilon": exps.exp_thm41_epsilon_scaling,
    "footnote3": exps.exp_footnote3_query_scaling,
    "lemma42": exps.exp_lemma42_coupon,
    "rquantile": exps.exp_rquantile_reproducibility,
    "iky": exps.exp_iky_value,
    "ablation-bits": exps.exp_ablation_domain_bits,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lca",
        description="Local Computation Algorithms for Knapsack (PODC 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a generated instance")
    p_solve.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_solve.add_argument("--n", type=int, default=100)
    p_solve.add_argument("--seed", type=int, default=0)

    p_lca = sub.add_parser("lca", help="answer LCA queries on a generated instance")
    p_lca.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_lca.add_argument("--n", type=int, default=2000)
    p_lca.add_argument("--seed", type=int, default=0)
    p_lca.add_argument("--epsilon", type=float, default=0.05)
    p_lca.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_lca.add_argument(
        "--tie-breaking",
        action="store_true",
        help="enable the stochastic tie-breaking extension (see core/tie_breaking.py)",
    )
    p_lca.add_argument("items", type=int, nargs="+", help="item indices to query")

    p_trace = sub.add_parser(
        "trace",
        help="run one LCA query under the tracer and print its span tree",
    )
    p_trace.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_trace.add_argument("--n", type=int, default=100_000)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--epsilon", type=float, default=0.05)
    p_trace.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_trace.add_argument("--query", type=int, default=0, help="item index to query")
    p_trace.add_argument(
        "--nonce", type=int, default=1, help="fresh-randomness nonce (fixed for replayability)"
    )
    p_trace.add_argument(
        "--json", metavar="PATH", default=None, help="also write the trace/v2 document to PATH"
    )
    p_trace.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also export the span tree as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    p_trace.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="trace a whole N-query service batch instead of one LCA query",
    )
    p_trace.add_argument(
        "--workers", type=int, default=2,
        help="shard the traced batch across this many workers (with --batch)",
    )
    p_trace.add_argument(
        "--executor", default="thread", choices=("thread", "process"),
        help="worker pool kind for the traced batch (with --batch)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="run a small LCA workload and dump the metrics registry snapshot as JSON",
    )
    p_metrics.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_metrics.add_argument("--n", type=int, default=20_000)
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--epsilon", type=float, default=0.05)
    p_metrics.add_argument("--lca-seed", type=int, default=42)
    p_metrics.add_argument("--queries", type=int, default=8, help="how many LCA queries to run")
    p_metrics.add_argument(
        "--out", metavar="PATH", default=None, help="write the snapshot here (default: stdout)"
    )
    p_metrics.add_argument(
        "--prom", metavar="PATH", default=None,
        help="also write the registry as Prometheus text exposition "
        "('-' for stdout)",
    )

    p_cluster = sub.add_parser(
        "cluster", help="simulate a distributed LCA deployment and audit it"
    )
    p_cluster.add_argument("--family", default="efficiency_tiers", choices=sorted(FAMILIES))
    p_cluster.add_argument("--n", type=int, default=2000)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--epsilon", type=float, default=0.1)
    p_cluster.add_argument("--workers", type=int, default=4)
    p_cluster.add_argument("--queries", type=int, default=60)
    p_cluster.add_argument(
        "--routing", default="round_robin", choices=("random", "round_robin", "least_loaded")
    )
    p_cluster.add_argument(
        "--crash-rate", type=float, default=0.0, help="probability a service attempt crashes"
    )
    p_cluster.add_argument(
        "--cache-size", type=int, default=0,
        help="cluster-shared pipeline cache capacity (0 disables)",
    )
    p_cluster.add_argument(
        "--nonce-pool", type=int, default=0,
        help="draw query nonces from a pool of this many (pinning enables cache hits)",
    )

    p_serve = sub.add_parser(
        "serve", help="serve a query batch through the KnapsackService engine"
    )
    p_serve.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_serve.add_argument("--n", type=int, default=5000)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--epsilon", type=float, default=0.1)
    p_serve.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_serve.add_argument("--queries", type=int, default=200, help="batch size to serve")
    p_serve.add_argument(
        "--batches", type=int, default=4, help="how many identical batches (shows cache hits)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, help="shard batches across this many workers"
    )
    p_serve.add_argument(
        "--executor", default="thread", choices=("thread", "process")
    )
    p_serve.add_argument(
        "--nonce", type=int, default=None, help="pin the fresh-randomness nonce (enables cache hits)"
    )

    p_load = sub.add_parser(
        "loadgen",
        help="open-loop load sweep over the service: tail latency, "
        "availability, saturation knee; writes bench-load/v1",
    )
    p_load.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_load.add_argument("--n", type=int, default=2000)
    p_load.add_argument("--seed", type=int, default=0, help="instance seed")
    p_load.add_argument("--epsilon", type=float, default=0.1)
    p_load.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_load.add_argument(
        "--rates", default="50,100,200,400,800",
        help="comma-separated offered rates (queries/sec) to sweep",
    )
    p_load.add_argument(
        "--queries", type=int, default=200, help="arrivals offered per rate"
    )
    p_load.add_argument("--workers", type=int, default=2, help="dispatch slots")
    p_load.add_argument(
        "--queue-cap", type=int, default=256,
        help="bounded-queue depth (arrivals finding it full are shed)",
    )
    p_load.add_argument(
        "--batch-max", type=int, default=16,
        help="largest microbatch one worker pulls per dispatch",
    )
    p_load.add_argument(
        "--arrival", default="poisson", choices=("poisson", "uniform", "constant"),
        help="interarrival law",
    )
    p_load.add_argument(
        "--clock", default="virtual", choices=("wall", "virtual"),
        help="wall = honest asyncio measurement; virtual = deterministic "
        "discrete-event simulation (byte-identical documents)",
    )
    p_load.add_argument(
        "--nonce", type=int, default=0,
        help="arrival-schedule nonce (distinguishes replays of one config)",
    )
    p_load.add_argument(
        "--base-s", type=float, default=0.002,
        help="virtual clock: per-batch fixed service time",
    )
    p_load.add_argument(
        "--per-query-s", type=float, default=0.0005,
        help="virtual clock: per-query service time",
    )
    p_load.add_argument(
        "--jitter", type=float, default=0.0,
        help="virtual clock: seeded multiplicative service-time jitter in [0,1)",
    )
    p_load.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="wall clock only: probe-failure rate injected under the run",
    )
    p_load.add_argument(
        "--retries", type=int, default=0,
        help="retry budget per probe when --fault-rate is set",
    )
    p_load.add_argument(
        "--cap", type=int, default=4_000,
        help="cap m_large / n_rq for speed (0 keeps the full calibrated sizes)",
    )
    p_load.add_argument(
        "--shared-instance", action="store_true",
        help="serve from the zero-copy shared-memory instance tier "
        "(process executor; the n=10^7 tier of BENCH_load.json)",
    )
    p_load.add_argument(
        "--service-workers", type=int, default=0,
        help="wall clock only: shard each dispatched batch across this "
        "many service workers (0 = the service's own default)",
    )
    p_load.add_argument(
        "--timeline", action="store_true",
        help="sample a timeline/v1 trajectory per rate (deterministic "
        "tick grid on --clock virtual; live wall sampler otherwise)",
    )
    p_load.add_argument(
        "--timeline-tick-s", type=float, default=None, metavar="S",
        help="timeline tick spacing (default 0.05 virtual, 0.25 wall)",
    )
    p_load.add_argument(
        "--out", metavar="PATH", default="BENCH_load.json",
        help="where to write the bench-load/v1 document",
    )
    p_load.add_argument(
        "--listen", action="store_true",
        help="instead of sweeping, expose the service as a newline-"
        "delimited-JSON endpoint (see repro.load.endpoint)",
    )
    p_load.add_argument("--host", default="127.0.0.1", help="bind address for --listen")
    p_load.add_argument("--port", type=int, default=0, help="bind port for --listen (0 = ephemeral)")
    p_load.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="drive a remote --listen endpoint instead of an in-process "
        "service (implies --clock wall; rows are tagged transport=socket)",
    )

    p_overload = sub.add_parser(
        "overload",
        help="grade the overload governor around the saturation knee "
        "(brownout on vs off); writes bench-overload/v1",
    )
    p_overload.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_overload.add_argument("--n", type=int, default=2000)
    p_overload.add_argument("--seed", type=int, default=0, help="instance seed")
    p_overload.add_argument("--epsilon", type=float, default=0.1)
    p_overload.add_argument(
        "--lca-seed", type=int, default=42, help="the shared random string r"
    )
    p_overload.add_argument(
        "--rates", default="100,200,400,800",
        help="comma-separated offered rates (queries/sec) for the "
        "calibration sweep that locates the knee",
    )
    p_overload.add_argument(
        "--queries", type=int, default=300, help="arrivals offered per rate"
    )
    p_overload.add_argument(
        "--workers", type=int, default=1,
        help="dispatch slots (1 pins the virtual capacity at "
        "1/(base_s + per_query_s) q/s)",
    )
    p_overload.add_argument("--queue-cap", type=int, default=256)
    p_overload.add_argument("--batch-max", type=int, default=1)
    p_overload.add_argument(
        "--nonce", type=int, default=0,
        help="arrival-schedule nonce (distinguishes replays of one config)",
    )
    p_overload.add_argument(
        "--cap", type=int, default=4_000,
        help="cap m_large / n_rq for speed (0 keeps the full calibrated sizes)",
    )
    p_overload.add_argument(
        "--deadline-s", type=float, default=0.05,
        help="per-query deadline; arrivals past it are shed at dispatch",
    )
    p_overload.add_argument(
        "--overload-factor", type=float, default=2.0,
        help="the comparison runs at this multiple of the detected knee",
    )
    p_overload.add_argument(
        "--availability-floor", type=float, default=0.9,
        help="governed goodput availability the brownout variant must "
        "hold past the knee (exit 1 when missed)",
    )
    p_overload.add_argument(
        "--timeline", action="store_true",
        help="sample a timeline/v1 trajectory per rate (the brownout-"
        "level staircase, byte-identical on replay)",
    )
    p_overload.add_argument(
        "--timeline-tick-s", type=float, default=None, metavar="S",
        help="timeline tick spacing in virtual seconds (default 0.05)",
    )
    p_overload.add_argument(
        "--out", metavar="PATH", default="BENCH_overload.json",
        help="where to write the bench-overload/v1 document",
    )

    p_top = sub.add_parser(
        "top",
        help="live terminal view of a serving endpoint: poll metrics "
        "and timeline ops, render counters and queue/brownout "
        "sparklines (like top(1) for the knapsack service)",
    )
    p_top.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="poll a running 'loadgen --listen' endpoint (default: "
        "spawn an in-process endpoint and drive it with light traffic)",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between polls / screen refreshes",
    )
    p_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (0 = run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (for logs "
        "and tests)",
    )
    p_top.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_top.add_argument("--n", type=int, default=2000, help="spawned endpoint: instance size")
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument("--epsilon", type=float, default=0.1)
    p_top.add_argument("--lca-seed", type=int, default=42)
    p_top.add_argument(
        "--cap", type=int, default=4_000,
        help="spawned endpoint: cap m_large / n_rq for speed",
    )

    p_suite = sub.add_parser(
        "suite",
        help="run a declarative scenario matrix and write suite-report/v1 "
        "(pass a matrix file, or a previous report to rerun it "
        "byte-identically from its embedded config)",
    )
    p_suite.add_argument(
        "matrix",
        help="path to a suite matrix JSON (benchmarks/suites/*.json) or a "
        "suite-report/v1 document to rerun",
    )
    p_suite.add_argument(
        "--filter", default=None, metavar="SUBSTR",
        help="run only cells whose id contains this substring",
    )
    p_suite.add_argument(
        "--cell", action="append", default=None, metavar="ID",
        help="run only this cell id (repeatable)",
    )
    p_suite.add_argument(
        "--out", metavar="PATH", default="suite_report.json",
        help="where to write the suite-report/v1 document",
    )

    p_bench = sub.add_parser(
        "bench", help="measure serving throughput and write BENCH_serve.json"
    )
    p_bench.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_bench.add_argument("--n", type=int, default=5000)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--epsilon", type=float, default=0.1)
    p_bench.add_argument("--lca-seed", type=int, default=7)
    p_bench.add_argument("--queries", type=int, default=1000)
    p_bench.add_argument("--batch", type=int, default=100)
    p_bench.add_argument("--workers", type=int, default=4)
    p_bench.add_argument(
        "--baseline-queries", type=int, default=20,
        help="queries for the per-query baseline (each runs a full pipeline)",
    )
    p_bench.add_argument(
        "--out", metavar="PATH", default="BENCH_serve.json",
        help="where to write the bench-result/v1 document",
    )

    p_cold = sub.add_parser(
        "bench-cold",
        help="measure cold-pipeline latency (columnar block path vs object path) "
        "and write BENCH_cold.json",
    )
    p_cold.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_cold.add_argument("--n", type=int, default=20_000)
    p_cold.add_argument("--seed", type=int, default=0)
    p_cold.add_argument("--epsilon", type=float, default=0.1)
    p_cold.add_argument("--lca-seed", type=int, default=7)
    p_cold.add_argument(
        "--queries", type=int, default=5, help="cold pipeline runs per path"
    )
    p_cold.add_argument(
        "--out", metavar="PATH", default="BENCH_cold.json",
        help="where to write the bench-result/v1 document",
    )
    p_cold.add_argument(
        "--sweep", metavar="NS", default=None,
        help="comma-separated instance sizes for an n-axis sweep "
        "(e.g. 10000,100000,1000000); overrides --n",
    )

    p_shm = sub.add_parser(
        "bench-shm",
        help="sweep the shared-memory instance tier across n (pickled vs "
        "zero-copy process shards, RSS + spin-up columns) and write "
        "BENCH_shm.json",
    )
    p_shm.add_argument("--family", default="planted_lsg", choices=sorted(FAMILIES))
    p_shm.add_argument(
        "--sizes", default="20000",
        help="comma-separated instance sizes (e.g. 20000,10000000,100000000)",
    )
    p_shm.add_argument("--seed", type=int, default=0)
    p_shm.add_argument("--epsilon", type=float, default=0.1)
    p_shm.add_argument("--lca-seed", type=int, default=7)
    p_shm.add_argument("--queries", type=int, default=32, help="queries per serving row")
    p_shm.add_argument("--workers", type=int, default=2)
    p_shm.add_argument(
        "--pickled-max-n", type=int, default=10_000_000,
        help="largest n still measured through the legacy pickled path",
    )
    p_shm.add_argument(
        "--rerun-sizes", default=None,
        help="sizes the committed baseline advertises for obs-diff reruns "
        "(default: the sizes <= 100000 from --sizes)",
    )
    p_shm.add_argument(
        "--out", metavar="PATH", default="BENCH_shm.json",
        help="where to write the bench-result/v1 document",
    )

    p_shmstat = sub.add_parser(
        "shm-stats",
        help="print shared-memory tier accounting (owned segments, orphan "
        "scan, counters, process memory)",
    )
    p_shmstat.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the stats object as JSON",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection sweep and write chaos-report/v1",
    )
    p_chaos.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_chaos.add_argument("--n", type=int, default=2000)
    p_chaos.add_argument("--instance-seed", type=int, default=0)
    p_chaos.add_argument(
        "--seed", type=int, default=7,
        help="chaos seed: drives the workload, the fault coins and the retry jitter",
    )
    p_chaos.add_argument("--epsilon", type=float, default=0.1)
    p_chaos.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_chaos.add_argument("--queries", type=int, default=40, help="queries per batch")
    p_chaos.add_argument("--batches", type=int, default=3, help="batches per fault rate")
    p_chaos.add_argument(
        "--rates", default="0.0,0.05,0.1",
        help="comma-separated probe-failure rates to sweep",
    )
    p_chaos.add_argument(
        "--target", type=float, default=0.99,
        help="required non-degraded availability at every rate",
    )
    p_chaos.add_argument("--retries", type=int, default=3, help="retry budget per probe")
    p_chaos.add_argument(
        "--cap", type=int, default=4_000,
        help="cap m_large / n_rq for speed (0 keeps the full calibrated sizes)",
    )
    p_chaos.add_argument(
        "--out", metavar="PATH", default="chaos_report.json",
        help="where to write the chaos-report/v1 document",
    )

    p_flight = sub.add_parser(
        "flightrec",
        help="replay a seeded faulty workload and print the flight-recorder timeline",
    )
    p_flight.add_argument("--family", default="uniform", choices=sorted(FAMILIES))
    p_flight.add_argument("--n", type=int, default=2000)
    p_flight.add_argument("--instance-seed", type=int, default=0)
    p_flight.add_argument(
        "--seed", type=int, default=7,
        help="chaos seed: drives the workload, the fault coins and the retry jitter",
    )
    p_flight.add_argument("--epsilon", type=float, default=0.1)
    p_flight.add_argument("--lca-seed", type=int, default=42, help="the shared random string r")
    p_flight.add_argument("--queries", type=int, default=20, help="queries per batch")
    p_flight.add_argument("--batches", type=int, default=2)
    p_flight.add_argument(
        "--rate", type=float, default=0.15, help="injected probe-failure rate"
    )
    p_flight.add_argument(
        "--corruption-rate", type=float, default=0.0, help="injected corruption rate"
    )
    p_flight.add_argument("--retries", type=int, default=3, help="retry budget per probe")
    p_flight.add_argument(
        "--audit", action="store_true",
        help="enable the probe plausibility audit (detects injected corruptions)",
    )
    p_flight.add_argument(
        "--cap", type=int, default=4_000,
        help="cap m_large / n_rq for speed (0 keeps the full calibrated sizes)",
    )
    p_flight.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the events/v1 document here (sorted keys: deterministic bytes)",
    )
    p_flight.add_argument(
        "--spill", metavar="PATH", default=None,
        help="append ring-evicted events to this JSONL file (long runs keep "
        "a complete timeline on disk while memory stays bounded)",
    )

    p_diff = sub.add_parser(
        "obs-diff",
        help="compare two bench-result/v1 documents and flag perf regressions",
    )
    p_diff.add_argument("baseline", help="baseline bench-result/v1 JSON path")
    p_diff.add_argument(
        "candidate", nargs="?", default=None,
        help="candidate document (default: run a fresh quick bench and "
        "compare relative metrics only)",
    )
    p_diff.add_argument(
        "--fresh", default=None,
        choices=("cold", "serve", "load", "overload", "chaos", "suite"),
        help="which quick bench to run when no candidate is given "
        "(default: inferred from the baseline's own context block; "
        "deterministic baselines — virtual-clock load, chaos, suite — "
        "are rerun exactly from their context)",
    )
    p_diff.add_argument(
        "--threshold", type=float, default=1.75,
        help="relative noise allowance (a timing must exceed baseline x this to regress)",
    )
    p_diff.add_argument(
        "--abs-floor-s", type=float, default=0.002,
        help="absolute excursion floor in seconds (sub-floor jitter never regresses)",
    )
    p_diff.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the bench-diff/v1 document here",
    )

    p_exp = sub.add_parser("experiment", help="run a DESIGN.md experiment")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result rows as JSON to PATH",
    )

    p_report = sub.add_parser(
        "report", help="run the whole experiment suite and write a markdown report"
    )
    p_report.add_argument("--scale", default="smoke", choices=("smoke", "full"))
    p_report.add_argument("--out", default=None, help="write to this path (default: stdout)")

    sub.add_parser("demo", help="walk the Figure 1 reduction end to end")
    sub.add_parser("families", help="list instance generator families")
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = generate(args.family, args.n, seed=args.seed)
    rows = []
    greedy = prefix_greedy(inst)
    half = half_approximation(inst)
    rows.append(["prefix_greedy", greedy.value, greedy.weight, len(greedy)])
    rows.append(["half_approximation", half.value, half.weight, len(half)])
    rows.append(["fractional_bound", fractional_upper_bound(inst), float("nan"), -1])
    if inst.n <= 400:
        exact = solve_exact(inst)
        rows.append(["exact", exact.value, exact.weight, len(exact)])
    print(f"instance: family={args.family} n={inst.n} K={inst.capacity:.4g}")
    print(format_table(["solver", "value", "weight", "|S|"], rows))
    return 0


def _cmd_lca(args: argparse.Namespace) -> int:
    inst = generate(args.family, args.n, seed=args.seed)
    sampler = WeightedSampler(inst)
    lca = LCAKP(
        sampler,
        QueryOracle(inst),
        args.epsilon,
        seed=args.lca_seed,
        tie_breaking=getattr(args, "tie_breaking", False),
    )
    rows = []
    for item in args.items:
        if not 0 <= item < inst.n:
            print(f"item {item} out of range [0, {inst.n})", file=sys.stderr)
            return 2
        before = sampler.samples_used
        ans = lca.answer(item)
        rows.append(
            [
                item,
                "yes" if ans.include else "no",
                ans.reason,
                sampler.samples_used - before,
            ]
        )
    print(
        f"LCA-KP: family={args.family} n={inst.n} eps={args.epsilon} "
        f"seed={args.lca_seed} (answers are consistent across reruns with the same seed)"
    )
    print(format_table(["item", "in solution", "reason", "samples"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import runtime as obs_runtime
    from .obs.export import render_span_tree, trace_document, write_json
    from .obs.trace import phase_counts

    if args.batch is not None:
        return _trace_batch(args)

    inst = generate(args.family, args.n, seed=args.seed)
    sampler = WeightedSampler(inst)
    oracle = QueryOracle(inst)
    lca = LCAKP(sampler, oracle, args.epsilon, seed=args.lca_seed)
    if not 0 <= args.query < inst.n:
        print(f"query index {args.query} out of range [0, {inst.n})", file=sys.stderr)
        return 2
    tracer = obs_runtime.TRACER
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        with tracer.span("repro.trace") as root:
            answer = lca.answer(args.query, nonce=args.nonce)
    finally:
        if not was_enabled:
            tracer.disable()

    print(
        f"trace: family={args.family} n={inst.n} eps={args.epsilon} "
        f"seed={args.lca_seed} query={args.query} -> "
        f"{'in' if answer.include else 'out'} ({answer.reason})"
    )
    print()
    print(render_span_tree(root))
    print()
    by_phase_q = phase_counts(root, "queries")
    by_phase_s = phase_counts(root, "samples")
    by_phase_b = phase_counts(root, "sample_blocks")
    q_attr, q_used = sum(by_phase_q.values()), oracle.queries_used
    s_attr, s_used = sum(by_phase_s.values()), sampler.samples_used
    b_attr, b_used = sum(by_phase_b.values()), sampler.blocks_used
    print(f"oracle queries: {q_used} total, {q_attr} span-attributed "
          f"({'exact' if q_attr == q_used else 'MISMATCH'})")
    print(f"weighted samples: {s_used} total, {s_attr} span-attributed "
          f"({'exact' if s_attr == s_used else 'MISMATCH'})")
    print(f"sample blocks: {b_used} total, {b_attr} span-attributed "
          f"({'exact' if b_attr == b_used else 'MISMATCH'})")
    if by_phase_b:
        per_phase = ", ".join(
            f"{phase}={count}" for phase, count in sorted(by_phase_b.items())
        )
        print(f"  blocks by phase: {per_phase}")
    if args.json:
        doc = trace_document(
            root,
            family=args.family,
            n=inst.n,
            epsilon=args.epsilon,
            lca_seed=args.lca_seed,
            query=args.query,
            include=answer.include,
            reason=answer.reason,
            oracle_queries=q_used,
            sampler_samples=s_used,
        )
        write_json(args.json, doc)
        print(f"\nwrote trace/v2 document to {args.json}")
    if args.chrome:
        from .obs.export import chrome_trace_document

        write_json(args.chrome, chrome_trace_document(root))
        print(
            f"wrote Chrome trace-event JSON to {args.chrome} "
            "(open in Perfetto or chrome://tracing)"
        )
    return 0 if (q_attr == q_used and s_attr == s_used and b_attr == b_used) else 1


def _trace_batch(args: argparse.Namespace) -> int:
    """Trace one sharded service batch as a single unified span tree.

    Thread shards are grafted by the pool driver; process shards come
    home serialized inside the chunk payloads and are grafted on merge —
    either way the partition invariant below must hold on one tree.
    """
    from .obs import runtime as obs_runtime
    from .obs.export import render_span_tree, trace_document, write_json
    from .obs.trace import phase_counts
    from .serve import KnapsackService

    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    inst = generate(args.family, args.n, seed=args.seed)
    service = KnapsackService(
        inst, args.epsilon, seed=args.lca_seed, cache=False, executor=args.executor
    )
    rng = np.random.default_rng(args.seed)
    indices = [int(i) for i in rng.integers(inst.n, size=args.batch)]
    tracer = obs_runtime.TRACER
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        with tracer.span("repro.trace") as root:
            report = service.answer_batch(
                indices,
                nonce=args.nonce,
                workers=args.workers if args.workers > 1 else None,
            )
    finally:
        if not was_enabled:
            tracer.disable()

    print(
        f"trace: family={args.family} n={inst.n} eps={args.epsilon} "
        f"seed={args.lca_seed} batch={len(indices)} workers={report.workers} "
        f"executor={args.executor} mode={report.mode}"
    )
    print()
    print(render_span_tree(root))
    print()
    by_phase_q = phase_counts(root, "queries")
    by_phase_s = phase_counts(root, "samples")
    by_phase_b = phase_counts(root, "sample_blocks")
    q_attr, q_used = sum(by_phase_q.values()), service.queries_used
    s_attr, s_used = sum(by_phase_s.values()), service.samples_used
    b_attr, b_used = sum(by_phase_b.values()), service.blocks_used
    print(f"oracle queries: {q_used} total, {q_attr} span-attributed "
          f"({'exact' if q_attr == q_used else 'MISMATCH'})")
    print(f"weighted samples: {s_used} total, {s_attr} span-attributed "
          f"({'exact' if s_attr == s_used else 'MISMATCH'})")
    print(f"sample blocks: {b_used} total, {b_attr} span-attributed "
          f"({'exact' if b_attr == b_used else 'MISMATCH'})")
    for label, by_phase in (("queries", by_phase_q), ("samples", by_phase_s)):
        if by_phase:
            per_phase = ", ".join(
                f"{phase}={count}" for phase, count in sorted(by_phase.items())
            )
            print(f"  {label} by phase: {per_phase}")
    if args.json:
        doc = trace_document(
            root,
            family=args.family,
            n=inst.n,
            epsilon=args.epsilon,
            lca_seed=args.lca_seed,
            batch=len(indices),
            workers=report.workers,
            executor=args.executor,
            mode=report.mode,
            oracle_queries=q_used,
            sampler_samples=s_used,
        )
        write_json(args.json, doc)
        print(f"\nwrote trace/v2 document to {args.json}")
    if args.chrome:
        from .obs.export import chrome_trace_document

        write_json(args.chrome, chrome_trace_document(root))
        print(
            f"wrote Chrome trace-event JSON to {args.chrome} "
            "(open in Perfetto or chrome://tracing)"
        )
    return 0 if (q_attr == q_used and s_attr == s_used and b_attr == b_used) else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs.export import jsonable, snapshot_document
    from .obs.runtime import REGISTRY

    inst = generate(args.family, args.n, seed=args.seed)
    sampler = WeightedSampler(inst)
    oracle = QueryOracle(inst)
    lca = LCAKP(sampler, oracle, args.epsilon, seed=args.lca_seed)
    latency = REGISTRY.histogram("cli.answer_latency_s")
    import time as _time

    rng = np.random.default_rng(args.seed)
    for i in range(args.queries):
        t0 = _time.perf_counter()
        lca.answer(int(rng.integers(inst.n)), nonce=i + 1)
        latency.observe(_time.perf_counter() - t0)
    doc = snapshot_document(
        REGISTRY,
        family=args.family,
        n=inst.n,
        epsilon=args.epsilon,
        queries=args.queries,
    )
    text = json.dumps(jsonable(doc), indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote metrics-snapshot/v2 to {args.out}")
    else:
        print(text)
    if args.prom:
        from .obs.export import render_prometheus

        exposition = render_prometheus(REGISTRY)
        if args.prom == "-":
            print(exposition, end="")
        else:
            with open(args.prom, "w") as fh:
                fh.write(exposition)
            print(f"wrote Prometheus exposition to {args.prom}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import KnapsackService

    inst = generate(args.family, args.n, seed=args.seed)
    service = KnapsackService(
        inst,
        args.epsilon,
        seed=args.lca_seed,
        executor=args.executor,
    )
    rng = np.random.default_rng(args.seed)
    indices = [int(i) for i in rng.integers(inst.n, size=args.queries)]
    rows = []
    for b in range(args.batches):
        report = service.answer_batch(
            indices,
            nonce=args.nonce,
            workers=args.workers if args.workers > 1 else None,
        )
        rows.append(
            [
                b,
                report.mode,
                report.workers,
                len(report.answers),
                report.cache_hits,
                report.pipelines_run,
                report.samples_spent,
                f"{report.queries_per_sec:,.0f}",
            ]
        )
    print(
        f"serve: family={args.family} n={inst.n} eps={args.epsilon} "
        f"seed={args.lca_seed} nonce={args.nonce} "
        f"({'pinned: repeat batches hit the cache' if args.nonce is not None else 'fresh per batch: no hits expected'})"
    )
    print(
        format_table(
            ["batch", "mode", "workers", "queries", "hits", "pipelines", "samples", "q/s"],
            rows,
        )
    )
    stats = service.stats()
    cache = stats["cache"]
    if cache is not None:
        print(
            f"cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(rate {cache['hit_rate']:.2f}), {cache['size']}/{cache['capacity']} entries"
        )
    print(f"totals: {stats['samples_used']} samples, {stats['queries_used']} point queries")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs.export import write_json
    from .serve.bench import bench_serve_document, serve_throughput_rows

    inst = generate(args.family, args.n, seed=args.seed)
    rows = serve_throughput_rows(
        inst,
        epsilon=args.epsilon,
        seed=args.lca_seed,
        queries=args.queries,
        batch=args.batch,
        workers=args.workers,
        baseline_queries=args.baseline_queries,
    )
    print(format_row_dicts(rows, title="serving-layer throughput"))
    doc = bench_serve_document(
        rows,
        family=args.family,
        n=args.n,
        seed=args.seed,
        epsilon=args.epsilon,
        lca_seed=args.lca_seed,
        queries=args.queries,
        batch=args.batch,
        workers=args.workers,
    )
    write_json(args.out, doc)
    print(f"\nwrote bench-result/v1 document to {args.out}")
    return 0


def _cmd_bench_cold(args: argparse.Namespace) -> int:
    from .obs.export import write_json
    from .serve.bench import bench_cold_document, cold_pipeline_rows, cold_sweep_rows

    if args.sweep:
        sizes = [int(s) for s in args.sweep.split(",") if s.strip()]
        rows = cold_sweep_rows(
            sizes,
            family=args.family,
            instance_seed=args.seed,
            epsilon=args.epsilon,
            seed=args.lca_seed,
            queries=args.queries,
        )
        title = "cold-pipeline latency, n-axis sweep"
    else:
        inst = generate(args.family, args.n, seed=args.seed)
        rows = cold_pipeline_rows(
            inst,
            epsilon=args.epsilon,
            seed=args.lca_seed,
            queries=args.queries,
        )
        title = "cold-pipeline latency (verified bit-identical)"
    print(format_row_dicts(rows, title=title))
    doc = bench_cold_document(
        rows,
        family=args.family,
        n=args.n,
        seed=args.seed,
        epsilon=args.epsilon,
        lca_seed=args.lca_seed,
        queries=args.queries,
        sweep=args.sweep,
    )
    write_json(args.out, doc)
    print(f"\nwrote bench-result/v1 document to {args.out}")
    return 0


def _cmd_bench_shm(args: argparse.Namespace) -> int:
    from .obs.export import write_json
    from .serve.bench import bench_shm_document, shm_scale_rows

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if args.rerun_sizes:
        rerun_sizes = [int(s) for s in args.rerun_sizes.split(",") if s.strip()]
    else:
        rerun_sizes = [s for s in sizes if s <= 100_000] or sizes[:1]
    rows = shm_scale_rows(
        sizes,
        family=args.family,
        instance_seed=args.seed,
        epsilon=args.epsilon,
        seed=args.lca_seed,
        queries=args.queries,
        workers=args.workers,
        pickled_max_n=args.pickled_max_n,
    )
    print(format_row_dicts(rows, title="shared-memory instance tier, n-axis sweep"))
    doc = bench_shm_document(
        rows,
        family=args.family,
        instance_seed=args.seed,
        epsilon=args.epsilon,
        lca_seed=args.lca_seed,
        queries=args.queries,
        workers=args.workers,
        rerun_sizes=rerun_sizes,
    )
    write_json(args.out, doc)
    print(f"\nwrote bench-result/v1 document to {args.out}")
    return 0


def _cmd_shm_stats(args: argparse.Namespace) -> int:
    import json

    from .knapsack.shm import shm_stats
    from .obs.export import write_json

    stats = shm_stats()
    print(json.dumps(stats, indent=2, sort_keys=True))
    if args.json:
        write_json(args.json, stats)
        print(f"\nwrote shm stats to {args.json}")
    leaked = stats["orphans"]
    if leaked:
        print(f"\nWARNING: {len(leaked)} orphaned segment(s): {leaked}")
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .core.parameters import LCAParameters
    from .faults import RetryPolicy, chaos_sweep

    inst = generate(args.family, args.n, seed=args.instance_seed)
    params = None
    if args.cap:
        params = LCAParameters.calibrated(
            args.epsilon, max_nrq=args.cap, max_m_large=args.cap
        )
    rates = tuple(float(r) for r in args.rates.split(",") if r.strip())
    from .obs.context import RunContext

    context = RunContext.build(
        "chaos",
        family=args.family,
        n=args.n,
        instance_seed=args.instance_seed,
        epsilon=args.epsilon,
        chaos_seed=args.seed,
        lca_seed=args.lca_seed,
        rates=list(rates),
        queries=args.queries,
        batches=args.batches,
        availability_target=args.target,
        retries=args.retries,
        cap=args.cap,
    )
    doc = chaos_sweep(
        inst,
        epsilon=args.epsilon,
        lca_seed=args.lca_seed,
        chaos_seed=args.seed,
        rates=rates,
        queries=args.queries,
        batches=args.batches,
        availability_target=args.target,
        params=params,
        retry=RetryPolicy(max_retries=args.retries, seed=args.seed),
        context=context,
    )
    # Sorted keys + no timing fields: the same seed must produce the
    # same bytes (the CI chaos-smoke job diffs two runs).
    text = json.dumps(doc, indent=2, sort_keys=True)
    with open(args.out, "w") as fh:
        fh.write(text + "\n")
    rows = [
        [
            r["probe_failure_rate"],
            r["answers"],
            r["degraded"],
            r["batch_aborts"],
            r["probe_retries"],
            f"{r['availability']:.4f}",
            "yes" if r["meets_target"] else "NO",
        ]
        for r in doc["rows"]
    ]
    print(
        f"chaos: family={args.family} n={inst.n} eps={args.epsilon} "
        f"chaos_seed={args.seed} lca_seed={args.lca_seed} "
        f"(deterministic: same seeds => byte-identical report)"
    )
    print(
        format_table(
            ["fail rate", "answers", "degraded", "aborts", "retries",
             "availability", "meets target"],
            rows,
        )
    )
    print(
        "fault-free equivalence: "
        + ("PASS" if doc["fault_free_equivalence"] else "FAIL")
    )
    print(f"wrote chaos-report/v1 to {args.out}")
    return 0 if (doc["all_meet_target"] and doc["fault_free_equivalence"]) else 1


def _cmd_flightrec(args: argparse.Namespace) -> int:
    import json

    from .core.parameters import LCAParameters
    from .faults import FaultPlan, RetryPolicy
    from .obs import runtime as obs_runtime
    from .obs.events import events_document, render_timeline
    from .serve import KnapsackService

    inst = generate(args.family, args.n, seed=args.instance_seed)
    params = None
    if args.cap:
        params = LCAParameters.calibrated(
            args.epsilon, max_nrq=args.cap, max_m_large=args.cap
        )
    plan = FaultPlan(
        seed=args.seed,
        probe_failure_rate=args.rate,
        corruption_rate=args.corruption_rate,
    )
    # Fresh recorder: the timeline (and the events/v1 bytes) must be a
    # pure function of the seeds, not of whatever ran before in this
    # process.  The spill (if any) is configured before the clear, which
    # truncates it — so the file too is a pure function of the seeds.
    if args.spill:
        obs_runtime.RECORDER.set_spill(args.spill)
    obs_runtime.RECORDER.clear()
    service = KnapsackService(
        inst,
        args.epsilon,
        seed=args.lca_seed,
        params=params,
        cache=False,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=args.retries, seed=args.seed),
        strict=False,
        probe_audit=args.audit,
    )
    rng = np.random.default_rng(args.seed)
    indices = [int(i) for i in rng.integers(inst.n, size=args.queries)]
    degraded = 0
    for b in range(args.batches):
        report = service.answer_batch(indices, nonce=200_000 + b)
        degraded += report.degraded
    doc = events_document(
        obs_runtime.RECORDER,
        family=args.family,
        n=inst.n,
        epsilon=args.epsilon,
        chaos_seed=args.seed,
        lca_seed=args.lca_seed,
        queries=args.queries,
        batches=args.batches,
        probe_failure_rate=args.rate,
        corruption_rate=args.corruption_rate,
        audit=bool(args.audit),
    )
    print(render_timeline(doc))
    print(
        f"\nserved {args.batches * args.queries} answers "
        f"({degraded} degraded), {service.retries_used} probe retries"
    )
    if args.out:
        # Sorted keys + no timing fields: same seeds => same bytes (the
        # CI chaos-smoke job diffs two runs).
        text = json.dumps(doc, indent=2, sort_keys=True)
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote events/v1 to {args.out}")
    if args.spill:
        print(
            f"spilled {obs_runtime.RECORDER.spilled} ring-evicted events "
            f"to {args.spill}"
        )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .load.sweep import run_load_sweep
    from .obs.export import write_json

    if args.listen:
        return _loadgen_listen(args)
    if args.connect:
        return _loadgen_connect(args)
    cfg = {
        "family": args.family,
        "n": args.n,
        "seed": args.seed,
        "epsilon": args.epsilon,
        "lca_seed": args.lca_seed,
        "rates": [float(r) for r in args.rates.split(",") if r.strip()],
        "queries": args.queries,
        "arrival": args.arrival,
        "workers": args.workers,
        "queue_cap": args.queue_cap,
        "batch_max": args.batch_max,
        "clock": args.clock,
        "nonce": args.nonce,
        "base_s": args.base_s,
        "per_query_s": args.per_query_s,
        "jitter": args.jitter,
        "fault_rate": args.fault_rate,
        "retries": args.retries,
        "cap": args.cap,
        "shared_instance": args.shared_instance,
        "service_workers": args.service_workers,
        "timeline": args.timeline,
    }
    if args.timeline_tick_s is not None:
        cfg["timeline_tick_s"] = args.timeline_tick_s
    if args.fault_rate > 0.0 and args.clock == "virtual":
        print(
            "note: --fault-rate only bites under --clock wall "
            "(the virtual clock simulates service time, not the service)",
            file=sys.stderr,
        )
    rows, knee, doc = run_load_sweep(cfg)
    shown = [
        {
            k: r[k]
            for k in (
                "offered_qps", "achieved_qps", "completed", "dropped",
                "degraded", "availability", "p50_latency_ms",
                "p99_queueing_ms", "p99_latency_ms",
            )
        }
        for r in rows
    ]
    print(
        f"loadgen: family={args.family} n={args.n} eps={args.epsilon} "
        f"clock={args.clock} arrival={args.arrival} workers={args.workers} "
        f"queue_cap={args.queue_cap} batch_max={args.batch_max}"
        + (" (deterministic: same seeds => byte-identical document)"
           if args.clock == "virtual" else "")
    )
    print(format_row_dicts(shown, title="open-loop load sweep"))
    if knee["detected"]:
        print(
            f"saturation knee: ~{knee['knee_rate']:g} q/s "
            f"(reason: {knee['reason']}, first saturated sweep index "
            f"{knee['index']})"
        )
    else:
        print("saturation knee: not reached inside the swept rates")
    if args.clock == "virtual":
        # Sorted keys + virtual timestamps: same seeds => same bytes
        # (the CI load-smoke job diffs two runs).
        import json

        with open(args.out, "w") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    else:
        write_json(args.out, doc)
    print(f"wrote bench-load/v1 document to {args.out}")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    import json

    from .load.overload_sweep import run_overload_sweep

    cfg = {
        "family": args.family,
        "n": args.n,
        "seed": args.seed,
        "epsilon": args.epsilon,
        "lca_seed": args.lca_seed,
        "rates": [float(r) for r in args.rates.split(",") if r.strip()],
        "queries": args.queries,
        "workers": args.workers,
        "queue_cap": args.queue_cap,
        "batch_max": args.batch_max,
        "nonce": args.nonce,
        "cap": args.cap,
        "deadline_s": args.deadline_s,
        "overload_factor": args.overload_factor,
        "availability_floor": args.availability_floor,
        "timeline": args.timeline,
    }
    if args.timeline_tick_s is not None:
        cfg["timeline_tick_s"] = args.timeline_tick_s
    rows, knee, doc = run_overload_sweep(cfg)
    keys = (
        "mode", "offered_qps", "completed", "dropped", "degraded",
        "deadline_shed", "brownout_shed", "availability", "full_quality",
        "p99_latency_ms",
    )
    shown = [{k: r.get(k, "") for k in keys} for r in rows]
    print(
        f"overload: family={args.family} n={args.n} eps={args.epsilon} "
        f"deadline={args.deadline_s:g}s factor={args.overload_factor:g} "
        f"(deterministic: same seeds => byte-identical document)"
    )
    print(format_row_dicts(shown, title="overload governor sweep"))
    comp = doc["comparison"]
    if knee.get("detected"):
        print(f"saturation knee: ~{knee['knee_rate']:g} q/s (reason: {knee['reason']})")
    else:
        print("saturation knee: not reached inside the swept rates")
    print(
        f"at {comp['rate']:g} q/s: availability on={comp['availability_on']:g} "
        f"off={comp['availability_off']:g} "
        f"(floor {comp['floor']:g} {'met' if comp['floor_met'] else 'MISSED'}); "
        f"full quality on={comp['full_quality_on']:g} "
        f"off={comp['full_quality_off']:g}"
    )
    # Sorted keys + virtual timestamps: same seeds => same bytes (the
    # CI overload-smoke job cmp's two runs).
    with open(args.out, "w") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote bench-overload/v1 document to {args.out}")
    if not comp["floor_met"]:
        print(
            f"FAIL: governed availability {comp['availability_on']:g} is "
            f"below the floor {comp['floor']:g}",
            file=sys.stderr,
        )
        return 1
    if not comp["off_below_on"]:
        print(
            "FAIL: brownout bought nothing (availability off >= on); the "
            "comparison rate is not past the knee",
            file=sys.stderr,
        )
        return 1
    return 0


def _loadgen_listen(args: argparse.Namespace) -> int:
    import asyncio

    from .core.parameters import LCAParameters
    from .load.endpoint import serve_endpoint
    from .serve import KnapsackService

    inst = generate(args.family, args.n, seed=args.seed)
    params = None
    if args.cap:
        params = LCAParameters.calibrated(
            args.epsilon, max_nrq=args.cap, max_m_large=args.cap
        )
    service = KnapsackService(
        inst, args.epsilon, seed=args.lca_seed, params=params, cache_capacity=8
    )

    async def run() -> None:
        server = await serve_endpoint(
            service,
            host=args.host,
            port=args.port,
            nonce=args.nonce,
            timeline=args.timeline,
            timeline_tick_s=args.timeline_tick_s,
        )
        host, port = server.sockets[0].getsockname()[:2]
        print(f"loadgen endpoint listening on {host}:{port} (Ctrl-C to stop)", flush=True)
        print('protocol: one JSON object per line, e.g. {"op": "answer", "index": 0}', flush=True)
        if args.timeline:
            print(
                "live timeline sampler on: poll it with "
                '{"op": "timeline"} or `repro top --connect`',
                flush=True,
            )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nendpoint stopped")
    return 0


def _loadgen_connect(args: argparse.Namespace) -> int:
    """Drive a remote ``--listen`` endpoint through the load harness.

    Wall clock only: the whole point of the socket face is that the
    measured latency includes a real process boundary and wire, which a
    virtual clock cannot simulate.  The rows are tagged
    ``transport="socket"`` so they never silently diff against
    in-process rows.
    """
    from .load import EndpointClient, LoadHarness
    from .obs.export import write_json

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect needs HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    if args.clock != "wall":
        print(
            "note: --connect implies --clock wall (a remote endpoint "
            "cannot be virtually clocked)",
            file=sys.stderr,
        )
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    with EndpointClient(host, int(port)) as client:
        harness = LoadHarness(
            client,
            seed=args.seed,
            arrival=args.arrival,
            workers=args.workers,
            queue_cap=args.queue_cap,
            batch_max=args.batch_max,
            clock="wall",
        )
        rows, knee = harness.sweep(rates, args.queries, nonce=args.nonce)
    for row in rows:
        row["n"] = client.n
        row["family"] = args.family
        row["transport"] = "socket"
    from .load import bench_load_document

    doc = bench_load_document(
        rows,
        knee=knee,
        name="load_latency_socket",
        title="Open-loop load over the NDJSON endpoint (wall clock)",
        bench="load",
        clock="wall",
        rates=rates,
        queries=args.queries,
        n=client.n,
        epsilon=client.epsilon,
        endpoint=f"{host}:{port}",
    )
    shown = [
        {
            k: r[k]
            for k in (
                "offered_qps", "achieved_qps", "completed", "dropped",
                "degraded", "availability", "p50_latency_ms", "p99_latency_ms",
            )
        }
        for r in rows
    ]
    print(
        f"loadgen --connect {host}:{port}: n={client.n} "
        f"epsilon={client.epsilon} (remote instance)"
    )
    print(format_row_dicts(shown, title="open-loop load sweep (socket)"))
    write_json(args.out, doc)
    print(f"wrote bench-load/v1 document to {args.out}")
    return 0


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 40) -> str:
    """Render the most recent ``width`` values as a unicode sparkline."""
    vals = [max(0.0, float(v)) for v in values][-width:]
    if not vals:
        return ""
    hi = max(vals)
    if hi <= 0:
        return _SPARK_GLYPHS[0] * len(vals)
    top = len(_SPARK_GLYPHS) - 1
    return "".join(_SPARK_GLYPHS[min(top, round(v / hi * top))] for v in vals)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a serving endpoint (``repro top``).

    Polls the NDJSON ``metrics`` and ``timeline`` ops on an interval
    and redraws: headline counters with per-interval rates, latency
    summaries, and queue-depth / brownout-level sparklines from the
    endpoint's live timeline (or from its own poll history when the
    endpoint runs without a sampler).
    """
    import threading
    import time as _time

    from .load.endpoint import EndpointClient

    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return 2
    spawned = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"--connect needs HOST:PORT, got {args.connect!r}", file=sys.stderr)
            return 2
        port = int(port)
        endpoint_label = f"{host}:{port}"
    else:
        # Self-spawned endpoint: serve in a daemon thread, drive it with
        # light traffic from the poll loop so there is motion to watch.
        import asyncio

        from .core.parameters import LCAParameters
        from .load.endpoint import serve_endpoint
        from .serve import KnapsackService

        inst = generate(args.family, args.n, seed=args.seed)
        params = None
        if args.cap:
            params = LCAParameters.calibrated(
                args.epsilon, max_nrq=args.cap, max_m_large=args.cap
            )
        service = KnapsackService(
            inst, args.epsilon, seed=args.lca_seed, params=params, cache_capacity=8
        )
        bound: dict = {}
        ready = threading.Event()

        def _serve() -> None:
            async def run() -> None:
                server = await serve_endpoint(
                    service,
                    host="127.0.0.1",
                    port=0,
                    timeline=True,
                    timeline_tick_s=args.interval,
                )
                bound["addr"] = server.sockets[0].getsockname()[:2]
                ready.set()
                async with server:
                    await server.serve_forever()

            try:
                asyncio.run(run())
            except Exception:  # noqa: BLE001 - daemon teardown
                ready.set()

        spawned = threading.Thread(target=_serve, daemon=True)
        spawned.start()
        if not ready.wait(timeout=30) or "addr" not in bound:
            print("spawned endpoint failed to start", file=sys.stderr)
            return 1
        host, port = bound["addr"][0], int(bound["addr"][1])
        endpoint_label = f"{host}:{port} (spawned)"

    depth_history: list[float] = []
    level_history: list[float] = []
    rate_history: list[float] = []
    prev_counters: dict[str, float] = {}
    iteration = 0
    client = EndpointClient(host, port)
    try:
        while True:
            iteration += 1
            if spawned is not None:
                # Light self-drive: a few real answers per refresh.
                for k in range(3):
                    client.answer((iteration * 3 + k) % client.n, nonce=iteration)
            snap = client.metrics()
            fragment = client.timeline()
            counters = dict(snap.get("counters", {}))
            requests = float(counters.get("endpoint.requests", 0))
            prev_requests = float(prev_counters.get("endpoint.requests", requests))
            rate_history.append((requests - prev_requests) / args.interval)
            ticks = (fragment or {}).get("ticks", [])
            if ticks:
                last = ticks[-1]
                depth_history.append(float(last.get("queue_depth", 0)))
                level_history.append(float(last.get("brownout_level", 0)))
            lines = [
                f"repro top — {endpoint_label}  interval={args.interval:g}s  "
                f"frame {iteration}" + (f"/{args.iterations}" if args.iterations else ""),
                "",
                f"  requests/s  {_sparkline(rate_history)}  "
                f"{rate_history[-1]:.1f} now, {requests:.0f} total",
            ]
            if depth_history:
                summary = (fragment or {}).get("summary", {})
                lines.append(
                    f"  queue depth {_sparkline(depth_history)}  "
                    f"{depth_history[-1]:.0f} now, "
                    f"{summary.get('max_queue_depth', 0)} max"
                )
                lines.append(
                    f"  brownout    {_sparkline(level_history)}  "
                    f"level {level_history[-1]:.0f} now, "
                    f"{summary.get('max_brownout_level', 0)} max"
                )
            else:
                lines.append("  (endpoint has no live timeline sampler; "
                             "start it with --timeline for queue/brownout rows)")
            lines.append("")
            top_counters = sorted(
                counters.items(), key=lambda kv: (-kv[1], kv[0])
            )[:10]
            for name, value in top_counters:
                delta = value - prev_counters.get(name, 0)
                lines.append(f"  {name:32s} {value:>12g}  (+{delta:g})")
            hists = snap.get("histograms", {})
            for name in sorted(hists)[:4]:
                h = hists[name]
                lines.append(
                    f"  {name:32s} p50={h.get('p50', 0):.4g} "
                    f"p99={h.get('p99', 0):.4g} n={h.get('count', 0):g}"
                )
            frame = "\n".join(lines)
            if args.no_clear:
                print(frame + "\n")
            else:
                print("\x1b[2J\x1b[H" + frame, flush=True)
            prev_counters = counters
            if args.iterations and iteration >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print("\nstopped")
        return 0
    finally:
        client.close()


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from .obs.context import RunContext
    from .obs.diff import diff_documents
    from .obs.export import write_json

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    relative_only = False
    if args.candidate is not None:
        with open(args.candidate) as fh:
            candidate = json.load(fh)
        cand_label = args.candidate
    else:
        # Candidate-less run: the baseline's own context block is the
        # rerun recipe (see RunContext) — a committed document can be
        # re-checked without knowing how it was produced.
        ctx = RunContext.from_document(baseline, default_bench=args.fresh or "cold")
        if args.fresh:
            ctx = RunContext(bench=args.fresh, config=ctx.config)
        candidate = ctx.rerun()
        source = "from baseline context" if baseline.get("context") else "defaults"
        cand_label = f"fresh {ctx.bench} run ({source})"
        # A deterministic rerun (virtual-clock load, chaos, suite) owes
        # the baseline identical numbers, so the full comparison (tails,
        # counts, knee inputs) is fair game; every other fresh run
        # happens on unknown hardware => relative metrics only.
        relative_only = not ctx.deterministic
    doc = diff_documents(
        baseline,
        candidate,
        threshold=args.threshold,
        abs_floor_s=args.abs_floor_s,
        relative_only=relative_only,
    )
    print(
        f"obs-diff: {args.baseline} vs {cand_label} "
        f"(threshold {args.threshold}x, floor {args.abs_floor_s}s"
        + (", relative metrics only)" if relative_only else ")")
    )
    rows = [
        [
            f["row"],
            f["metric"],
            f["status"] if f["status"] == "ok" else f["status"].upper(),
            f"{f['baseline']:.6g}",
            f"{f['candidate']:.6g}",
            f["note"],
        ]
        for f in doc["findings"]
    ]
    if rows:
        print(format_table(
            ["row", "metric", "status", "baseline", "candidate", "note"], rows
        ))
    for missing in doc["rows_missing"]:
        print(f"unmatched row: {missing}")
    print(
        f"{doc['rows_compared']} rows compared: {doc['regressions']} regressions, "
        f"{doc['drifts']} drifts, {doc['improvements']} improvements -> "
        + ("OK" if doc["ok"] else "FAIL")
    )
    if args.out:
        write_json(args.out, doc)
        print(f"wrote bench-diff/v1 to {args.out}")
    return 0 if doc["ok"] else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    from .obs.schema import BenchDocument
    from .suite import SuiteConfig, SuiteRunner

    from .errors import ReproError

    try:
        config = SuiteConfig.from_file(args.matrix)
        if args.filter or args.cell:
            config = config.select(pattern=args.filter, ids=args.cell)
    except ReproError as exc:
        print(f"suite: {exc}", file=sys.stderr)
        return 2
    print(
        f"suite {config.name!r}: {len(config.cells)} cell(s), "
        f"seed {config.seed}"
    )

    def progress(result) -> None:
        marker = {
            "pass": "ok", "expected_failure": "ok (expected failure)",
            "fail": "FAIL", "error": "ERROR",
        }[result.outcome]
        extra = f" [{result.error}]" if result.error else ""
        print(f"  {result.cell.id:32s} {result.cell.kind:12s} {marker}{extra}")

    result = SuiteRunner(config).run(progress=progress)
    doc = result.document()
    BenchDocument(
        kind="suite-report", body=doc, deterministic=bool(doc["deterministic"])
    ).write(args.out)
    shown = [
        {
            "id": c["id"],
            "kind": c["kind"],
            "family": c["family"],
            "n": c["n"],
            "outcome": c["outcome"],
            "checks": f"{sum(1 for ch in c['checks'] if ch['ok'])}"
            f"/{len(c['checks'])}",
        }
        for c in doc["cells"]
    ]
    print(format_row_dicts(shown, title=f"suite {config.name}"))
    failed = [
        (c["id"], ch)
        for c in doc["cells"]
        for ch in c["checks"]
        if not ch["ok"]
    ]
    for cell_id, ch in failed:
        print(
            f"failed check: {cell_id}.{ch['name']}: observed "
            f"{ch['observed']} vs threshold {ch['threshold']} "
            f"({ch.get('detail', '')})"
        )
    s = doc["summary"]
    print(
        f"{s['cells']} cells: {s['passed']} passed, "
        f"{s['expected_failures']} expected failures, {s['failed']} failed, "
        f"{s['errors']} errors -> " + ("OK" if doc["ok"] else "FAIL")
    )
    print(f"wrote suite-report/v1 to {args.out}")
    return 0 if doc["ok"] else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name]()
    print(format_row_dicts(rows, title=f"experiment {args.name}"))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2, default=str)
        print(f"\nwrote {len(rows)} rows to {args.json}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .distributed.cluster import ClusterSimulation

    inst = generate(args.family, args.n, seed=args.seed)
    sim = ClusterSimulation(
        inst,
        args.epsilon,
        seed=31337,
        workers=args.workers,
        routing=args.routing,
        crash_rate=args.crash_rate,
        cache_capacity=args.cache_size,
        nonce_pool=args.nonce_pool,
    )
    report = sim.run(args.queries)
    print(
        f"cluster: {args.workers} workers, {args.queries} queries, "
        f"routing={args.routing}, crash_rate={args.crash_rate}"
    )
    rows = [
        ["queries answered", len(report.records)],
        ["consistency rate", f"{report.consistency_rate:.3f}"],
        ["contested items", len(report.contested_items)],
        ["crashes (retried)", report.total_crashes],
        ["mean latency (ms)", f"{report.mean_latency * 1000:.2f}"],
        ["p95 latency (ms)", f"{report.p95_latency * 1000:.2f}"],
        ["total samples", report.total_samples],
        ["per-worker load", " ".join(map(str, report.per_worker_load))],
    ]
    if report.cache is not None:
        rows.append(
            ["pipeline cache", f"{report.cache['hits']} hits / {report.cache['misses']} misses"]
        )
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    text = generate_report(scale=args.scale)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    rng = np.random.default_rng(0)
    m = 15
    x = np.zeros(m, dtype=np.int8)
    x[int(rng.integers(m))] = 1
    print("Figure 1 demo: OR input x =", "".join(map(str, x.tolist())))
    oracle = BitOracle(x)
    red = ORReduction(oracle)
    inst_oracle = red.oracle()
    print(f"simulated Knapsack instance: n={red.n}, K=1, all weights 1")
    special = inst_oracle.query(red.special_index)
    print(f"item s_n = {special} (no bit-query charged)")
    for i in (0, 3, 7):
        item = inst_oracle.query(i)
        print(f"item s_{i} = {item}  (one bit-query; total so far: {oracle.queries_used})")
    print(
        "s_n in the optimal solution? ",
        red.special_in_unique_optimum(),
        f"   (OR(x) = {oracle.true_or()}; the two are complementary)",
    )
    print(
        "=> answering that single LCA query computes OR(x), so the LCA's\n"
        "   query budget is lower-bounded by R(OR) = Omega(n)  [Theorem 3.2]"
    )
    return 0


def _cmd_families(_args: argparse.Namespace) -> int:
    for name in sorted(FAMILIES):
        doc = (FAMILIES[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:24s} {doc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "lca": _cmd_lca,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "flightrec": _cmd_flightrec,
        "obs-diff": _cmd_obs_diff,
        "suite": _cmd_suite,
        "cluster": _cmd_cluster,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "overload": _cmd_overload,
        "top": _cmd_top,
        "bench": _cmd_bench,
        "bench-cold": _cmd_bench_cold,
        "bench-shm": _cmd_bench_shm,
        "shm-stats": _cmd_shm_stats,
        "chaos": _cmd_chaos,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "demo": _cmd_demo,
        "families": _cmd_families,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
