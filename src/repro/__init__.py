"""repro — Local Computation Algorithms for Knapsack.

A production-quality reproduction of

    Canonne, Li & Umboh, "Local Computation Algorithms for Knapsack:
    impossibility results, and how to avoid them" (PODC 2025).

Public API tour
---------------
Problem model and workloads::

    from repro import KnapsackInstance, generate
    inst = generate("planted_lsg", 2000, seed=0, epsilon=0.05)

The paper's LCA (Theorem 4.1)::

    from repro import LCAKP, WeightedSampler, QueryOracle
    lca = LCAKP(WeightedSampler(inst), QueryOracle(inst), epsilon=0.05, seed=42)
    lca.answer(17).include          # "is item 17 in the solution?"

Reference solvers, the impossibility constructions, the reproducible-
quantile machinery and the distributed simulation live in the
``knapsack``, ``lowerbounds``, ``reproducible`` and ``distributed``
subpackages; see DESIGN.md for the full inventory and EXPERIMENTS.md
for the per-theorem measurements.
"""

from .access import (
    CustomSampler,
    FunctionInstance,
    QueryOracle,
    SeedChain,
    WeightedSampler,
)
from .core import (
    LCAKP,
    LCAAnswer,
    LCAParameters,
    classify_instance,
    mapping_greedy,
)
from .errors import (
    ConsistencyViolation,
    InvalidInstanceError,
    QueryBudgetExceededError,
    ReproError,
    SolverError,
)
from .knapsack import FAMILIES, Item, KnapsackInstance, generate
from .lca import AlwaysNoLCA, FullReadLCA, LCAFleet
from .reproducible import EfficiencyDomain, ReproducibleQuantileEstimator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Item",
    "KnapsackInstance",
    "FAMILIES",
    "generate",
    # access
    "QueryOracle",
    "WeightedSampler",
    "CustomSampler",
    "FunctionInstance",
    "SeedChain",
    # the contribution
    "LCAKP",
    "LCAAnswer",
    "LCAParameters",
    "classify_instance",
    "mapping_greedy",
    # LCA framework
    "AlwaysNoLCA",
    "FullReadLCA",
    "LCAFleet",
    # reproducible machinery
    "EfficiencyDomain",
    "ReproducibleQuantileEstimator",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "SolverError",
    "QueryBudgetExceededError",
    "ConsistencyViolation",
]
