"""Metrics primitives: counters, gauges, and streaming histograms.

The registry is the always-on half of the observability substrate (the
tracer in :mod:`repro.obs.trace` is the opt-in half).  Everything here
is dependency-free and cheap enough to sit on the query hot path: a
counter increment is two attribute lookups and an integer add, and a
histogram observation is one ``math.log`` plus a dict update.

:class:`Histogram` estimates quantiles *without storing samples*: it
keeps counts in geometrically-spaced buckets (a fixed number of buckets
per decade), so p50/p90/p99 come back with bounded *relative* error —
about ``(b - 1) / 2`` where ``b`` is the per-bucket growth factor
(~1.8% at the default 64 buckets/decade) — regardless of how many
observations were made.  Exact ``min``/``max``/``sum``/``count`` are
tracked alongside and quantile estimates are clamped into
``[min, max]``.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

# v2: snapshots ride the BenchDocument/RunContext envelope (name,
# title, context.bench="metrics") when emitted by the CLI; the bare
# registry snapshot carries the tag plus the three metric maps.
SNAPSHOT_SCHEMA = "metrics-snapshot/v2"


class Counter:
    """A monotonically non-decreasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({n}))")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (snapshot deltas are the usual alternative)."""
        self._value = 0


class Gauge:
    """A value that goes up and down (queue depth, last latency, ...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the current level by ``delta``."""
        self._value += float(delta)

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def reset(self) -> None:
        """Return the gauge to zero."""
        self._value = 0.0


class Histogram:
    """Streaming histogram with geometric buckets and O(1) memory per
    occupied bucket.

    Positive observations land in bucket ``floor(log10(v) * bpd)`` where
    ``bpd`` is ``buckets_per_decade``; zero and negative observations
    are counted in dedicated side-buckets (negatives keep their total
    and minimum, which is all the quantile path needs for the workloads
    here — durations and counts are non-negative).
    """

    __slots__ = (
        "name",
        "_bpd",
        "_buckets",
        "_zero",
        "_neg",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, name: str, *, buckets_per_decade: int = 64) -> None:
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.name = name
        self._bpd = buckets_per_decade
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._neg = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        if math.isnan(v):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        self._count += 1
        self._sum += v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if v > 0:
            idx = math.floor(math.log10(v) * self._bpd)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
        elif v == 0:
            self._zero += 1
        else:
            self._neg += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for v in values:
            self.observe(v)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def min(self) -> float:
        """Exact minimum observed (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum observed (``-inf`` when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``).

        Walks the cumulative bucket counts and returns the geometric
        midpoint of the bucket holding rank ``q * (count - 1)``; the
        estimate is clamped to the exact observed range.  Raises on an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self._count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = q * (self._count - 1)
        # Negative observations sort first, then zeros, then the
        # geometric buckets in index order.
        cum = self._neg
        if rank < cum:
            return self._min
        cum += self._zero
        if rank < cum:
            return 0.0 if self._min > 0 else max(self._min, 0.0)
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            if rank < cum:
                lo = 10.0 ** (idx / self._bpd)
                hi = 10.0 ** ((idx + 1) / self._bpd)
                return min(max(math.sqrt(lo * hi), self._min), self._max)
        return self._max

    def snapshot(self) -> dict:
        """JSON-ready summary (count/sum/min/max/mean + p50/p90/p99)."""
        if self._count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        """Forget all observations."""
        self._buckets.clear()
        self._zero = self._neg = self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Full lossless internal state (bucket counts, not quantile
        summaries) — the mergeable form shipped across process
        boundaries.  Plain dicts/ints/floats, so it pickles and JSONs.
        """
        return {
            "bpd": self._bpd,
            "buckets": {str(k): v for k, v in self._buckets.items()},
            "zero": self._zero,
            "neg": self._neg,
            "count": self._count,
            "sum": self._sum,
            "min": None if math.isinf(self._min) else self._min,
            "max": None if math.isinf(self._max) else self._max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Bucket-wise addition is exact for everything the histogram
        tracks (count, sum, min, max, and every bucket count), so a
        merged histogram is indistinguishable from one that observed
        both streams directly.  Requires equal ``buckets_per_decade``.
        """
        bpd = int(state["bpd"])
        if bpd != self._bpd:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge state with "
                f"buckets_per_decade={bpd} into {self._bpd}"
            )
        for key, n in state.get("buckets", {}).items():
            idx = int(key)
            self._buckets[idx] = self._buckets.get(idx, 0) + int(n)
        self._zero += int(state.get("zero", 0))
        self._neg += int(state.get("neg", 0))
        self._count += int(state.get("count", 0))
        self._sum += float(state.get("sum", 0.0))
        smin, smax = state.get("min"), state.get("max")
        if smin is not None and float(smin) < self._min:
            self._min = float(smin)
        if smax is not None and float(smax) > self._max:
            self._max = float(smax)


class MetricsRegistry:
    """Named home for the process's counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call with a name creates the metric, later calls return the same
    object (asking for an existing name as a *different* kind is an
    error).  ``snapshot()`` returns one JSON-ready dict for the whole
    registry — the payload behind ``repro metrics`` and the bench
    telemetry exports.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, *, buckets_per_decade: int = 64) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(
            name, Histogram, buckets_per_decade=buckets_per_decade
        )

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """One JSON-ready dict covering every registered metric."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.snapshot()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def counter_values(self) -> dict[str, int]:
        """Current counter values only — the cheap per-tick read the
        timeline sampler diffs (no histogram summarization)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter)
        }

    def gauge_values(self) -> dict[str, float]:
        """Current gauge levels only (see :meth:`counter_values`)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Gauge)
        }

    def reset(self) -> None:
        """Reset every metric in place (objects keep their identity)."""
        for metric in self._metrics.values():
            metric.reset()

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Lossless, mergeable registry state (vs. :meth:`snapshot`,
        which summarizes histograms into quantile estimates)."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.state()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_state(self, state: dict, *, include_gauges: bool = False) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters add and histograms merge bucket-wise — both are totals,
        so cross-process folding is exact.  Gauges are *levels*, not
        totals; they are skipped unless ``include_gauges`` forces a
        last-writer-wins overwrite.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(
                name, buckets_per_decade=int(hist_state["bpd"])
            ).merge_state(hist_state)
        if include_gauges:
            for name, value in state.get("gauges", {}).items():
                self.gauge(name).set(float(value))
