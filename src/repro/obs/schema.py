"""Hand-rolled validators for the observability JSON schemas.

The documented schemas (see ``docs/observability.md``) are small enough
that a dependency-free structural check beats pulling in jsonschema:
each validator walks the document, collects every problem, and raises
:class:`SchemaError` listing all of them at once.

Usable as a module CLI — this is what the CI smoke job runs::

    python -m repro.obs.schema --kind trace trace.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = [
    "SchemaError",
    "validate_trace",
    "validate_metrics_snapshot",
    "validate_bench_result",
    "validate_bench_observability",
    "validate",
    "main",
]


class SchemaError(ValueError):
    """A document failed validation; ``problems`` lists every issue."""

    def __init__(self, kind: str, problems: list[str]) -> None:
        self.kind = kind
        self.problems = problems
        super().__init__(
            f"invalid {kind} document ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems)
        )


def _require(doc: dict, key: str, types, problems: list[str], where: str = "") -> bool:
    label = f"{where}{key}"
    if key not in doc:
        problems.append(f"missing key {label!r}")
        return False
    if not isinstance(doc[key], types):
        tnames = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        problems.append(f"{label!r} must be {tnames}, got {type(doc[key]).__name__}")
        return False
    return True


_NUM = (int, float)


def _check_span(node: object, problems: list[str], where: str) -> None:
    if not isinstance(node, dict):
        problems.append(f"{where} must be an object")
        return
    _require(node, "name", str, problems, where + ".")
    _require(node, "duration_s", _NUM, problems, where + ".")
    if _require(node, "counts", dict, problems, where + "."):
        for key, value in node["counts"].items():
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}.counts[{key!r}] must be a non-negative int"
                )
    if _require(node, "children", list, problems, where + "."):
        for i, child in enumerate(node["children"]):
            _check_span(child, problems, f"{where}.children[{i}]")


def validate_trace(doc: dict) -> dict:
    """Validate a ``trace/v1`` document, including the partition
    invariant: for every counted key, the per-phase counts sum to the
    recorded total."""
    problems: list[str] = []
    if doc.get("schema") != "trace/v1":
        problems.append(f"schema must be 'trace/v1', got {doc.get('schema')!r}")
    if _require(doc, "root", dict, problems):
        _check_span(doc["root"], problems, "root")
    if _require(doc, "totals", dict, problems):
        for key, entry in doc["totals"].items():
            where = f"totals[{key!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            ok_total = _require(entry, "total", int, problems, where + ".")
            ok_phase = _require(entry, "by_phase", dict, problems, where + ".")
            if ok_total and ok_phase:
                phase_sum = sum(entry["by_phase"].values())
                if phase_sum != entry["total"]:
                    problems.append(
                        f"{where}: per-phase counts sum to {phase_sum}, "
                        f"but total is {entry['total']}"
                    )
    if problems:
        raise SchemaError("trace/v1", problems)
    return doc


def validate_metrics_snapshot(doc: dict) -> dict:
    """Validate a ``metrics-snapshot/v1`` document."""
    problems: list[str] = []
    if doc.get("schema") != "metrics-snapshot/v1":
        problems.append(
            f"schema must be 'metrics-snapshot/v1', got {doc.get('schema')!r}"
        )
    if _require(doc, "counters", dict, problems):
        for name, value in doc["counters"].items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"counters[{name!r}] must be a non-negative int")
    if _require(doc, "gauges", dict, problems):
        for name, value in doc["gauges"].items():
            if not isinstance(value, _NUM):
                problems.append(f"gauges[{name!r}] must be numeric")
    if _require(doc, "histograms", dict, problems):
        for name, hist in doc["histograms"].items():
            if not isinstance(hist, dict):
                problems.append(f"histograms[{name!r}] must be an object")
                continue
            _require(hist, "count", int, problems, f"histograms[{name!r}].")
            if hist.get("count"):
                for stat in ("sum", "min", "max", "mean", "p50", "p90", "p99"):
                    _require(hist, stat, _NUM, problems, f"histograms[{name!r}].")
    if problems:
        raise SchemaError("metrics-snapshot/v1", problems)
    return doc


def validate_bench_result(doc: dict) -> dict:
    """Validate a ``bench-result/v1`` document (one experiment)."""
    problems: list[str] = []
    if doc.get("schema") != "bench-result/v1":
        problems.append(f"schema must be 'bench-result/v1', got {doc.get('schema')!r}")
    _require(doc, "name", str, problems)
    _require(doc, "title", str, problems)
    if _require(doc, "rows", list, problems):
        for i, row in enumerate(doc["rows"]):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] must be an object")
    _require(doc, "wall_clock_s", _NUM, problems)
    _require(doc, "total_queries", int, problems)
    _require(doc, "total_samples", int, problems)
    if problems:
        raise SchemaError("bench-result/v1", problems)
    return doc


def validate_bench_observability(doc: dict) -> dict:
    """Validate the top-level ``bench-observability/v1`` summary."""
    problems: list[str] = []
    if doc.get("schema") != "bench-observability/v1":
        problems.append(
            f"schema must be 'bench-observability/v1', got {doc.get('schema')!r}"
        )
    if _require(doc, "experiments", dict, problems):
        for name, entry in doc["experiments"].items():
            where = f"experiments[{name!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            _require(entry, "title", str, problems, where + ".")
            _require(entry, "wall_clock_s", _NUM, problems, where + ".")
            _require(entry, "total_queries", int, problems, where + ".")
            _require(entry, "total_samples", int, problems, where + ".")
            _require(entry, "sample_batch_histogram", dict, problems, where + ".")
    if problems:
        raise SchemaError("bench-observability/v1", problems)
    return doc


_VALIDATORS = {
    "trace": validate_trace,
    "metrics": validate_metrics_snapshot,
    "bench-result": validate_bench_result,
    "bench-observability": validate_bench_observability,
}


def validate(kind: str, doc: dict) -> dict:
    """Dispatch to the validator for ``kind`` (see ``--kind`` choices)."""
    if kind not in _VALIDATORS:
        raise ValueError(f"unknown schema kind {kind!r}; known: {sorted(_VALIDATORS)}")
    return _VALIDATORS[kind](doc)


def main(argv: list[str] | None = None) -> int:
    """CLI: validate JSON files against one of the documented schemas."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate observability JSON documents",
    )
    parser.add_argument("--kind", required=True, choices=sorted(_VALIDATORS))
    parser.add_argument("paths", nargs="+", help="JSON files to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            validate(args.kind, json.loads(pathlib.Path(path).read_text()))
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"{path}: FAIL\n{exc}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: ok ({args.kind})")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
