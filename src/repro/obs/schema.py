"""Hand-rolled validators for the observability JSON schemas, plus the
one bench-document build→validate→write API every emitter shares.

The documented schemas (see ``docs/observability.md``) are small enough
that a dependency-free structural check beats pulling in jsonschema:
each validator walks the document, collects every problem, and raises
:class:`SchemaError` listing all of them at once.

:class:`BenchDocument` is the single code path for *producing* those
documents: the four historical builders (cold/serve bench, load sweep,
chaos report) and the suite runner all assemble through
``BenchDocument.build(...)``, validate in place, and write with one of
exactly two byte disciplines — deterministic (sorted keys, trailing
newline; CI diffs two runs byte-for-byte) or pretty (insertion order,
for wall-clock documents where bytes cannot be pinned anyway).

Usable as a module CLI — this is what the CI smoke job runs::

    python -m repro.obs.schema --kind trace trace.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass, field

__all__ = [
    "SchemaError",
    "BenchDocument",
    "validate_trace",
    "validate_metrics_snapshot",
    "validate_timeline",
    "validate_bench_result",
    "validate_bench_load",
    "validate_bench_overload",
    "validate_bench_observability",
    "validate_chaos_report",
    "validate_events",
    "validate_bench_diff",
    "validate_suite_report",
    "validate",
    "main",
]


class SchemaError(ValueError):
    """A document failed validation; ``problems`` lists every issue."""

    def __init__(self, kind: str, problems: list[str]) -> None:
        self.kind = kind
        self.problems = problems
        super().__init__(
            f"invalid {kind} document ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems)
        )


def _require(doc: dict, key: str, types, problems: list[str], where: str = "") -> bool:
    label = f"{where}{key}"
    if key not in doc:
        problems.append(f"missing key {label!r}")
        return False
    if not isinstance(doc[key], types):
        tnames = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        problems.append(f"{label!r} must be {tnames}, got {type(doc[key]).__name__}")
        return False
    return True


_NUM = (int, float)

#: Validator kind -> the schema tag its documents carry.
SCHEMA_TAGS = {
    "bench-result": "bench-result/v1",
    "bench-load": "bench-load/v1",
    "bench-overload": "bench-overload/v1",
    "chaos": "chaos-report/v1",
    "events": "events/v1",
    "suite-report": "suite-report/v1",
    "trace": "trace/v2",
    "metrics": "metrics-snapshot/v2",
    "timeline": "timeline/v1",
}


@dataclass
class BenchDocument:
    """One bench document: build → validate → write, one code path.

    ``kind`` is a validator key (see :data:`SCHEMA_TAGS`); ``body`` is
    the JSON-ready document.  ``deterministic`` selects the byte
    discipline :meth:`write` uses: sorted keys plus a trailing newline
    (so two runs of the same seeds are byte-identical — the contract CI
    ``cmp``'s), versus the pretty insertion-order dump used for
    wall-clock documents.
    """

    kind: str
    body: dict
    deterministic: bool = False
    problems: list = field(default_factory=list, repr=False)

    @classmethod
    def build(
        cls,
        kind: str,
        *,
        name: str | None = None,
        title: str | None = None,
        rows: list | None = None,
        context=None,
        deterministic: bool = False,
        **fields,
    ) -> "BenchDocument":
        """Assemble a document of ``kind``.

        ``context`` may be a :class:`~repro.obs.context.RunContext`
        (embedded via its ``embed()``) or a plain mapping; extra
        ``fields`` land at the top level in the order given.  The body
        is passed through :func:`~repro.obs.export.jsonable`, so numpy
        scalars and dataclasses are safe to hand in.
        """
        from .export import jsonable

        if kind not in SCHEMA_TAGS:
            raise ValueError(
                f"unknown document kind {kind!r}; known: {sorted(SCHEMA_TAGS)}"
            )
        body: dict = {"schema": SCHEMA_TAGS[kind]}
        if name is not None:
            body["name"] = name
        if title is not None:
            body["title"] = title
        if rows is not None:
            body["rows"] = rows
        body.update(fields)
        if context is not None:
            body["context"] = (
                context.embed() if hasattr(context, "embed") else dict(context)
            )
        return cls(kind=kind, body=jsonable(body), deterministic=deterministic)

    def validate(self) -> "BenchDocument":
        """Validate the body against its schema; raises :class:`SchemaError`."""
        validate(self.kind, self.body)
        return self

    def text(self) -> str:
        """The exact bytes :meth:`write` would produce (as ``str``)."""
        if self.deterministic:
            return json.dumps(self.body, indent=2, sort_keys=True) + "\n"
        return json.dumps(self.body, indent=2, sort_keys=False) + "\n"

    def write(self, path) -> pathlib.Path:
        """Write the document to ``path``; returns the path written."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.text())
        return target


def _check_span(node: object, problems: list[str], where: str) -> None:
    if not isinstance(node, dict):
        problems.append(f"{where} must be an object")
        return
    _require(node, "name", str, problems, where + ".")
    _require(node, "span_id", str, problems, where + ".")
    _require(node, "duration_s", _NUM, problems, where + ".")
    if _require(node, "counts", dict, problems, where + "."):
        for key, value in node["counts"].items():
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"{where}.counts[{key!r}] must be a non-negative int"
                )
    if _require(node, "children", list, problems, where + "."):
        for i, child in enumerate(node["children"]):
            _check_span(child, problems, f"{where}.children[{i}]")


def _check_envelope(doc: dict, bench: str, problems: list[str]) -> None:
    """The BenchDocument envelope (``name``/``title``/``context``) the
    v2 observability documents carry.  Optional for bare in-process
    snapshots; type-checked — and pinned to ``context.bench`` — when
    present."""
    if "name" in doc:
        _require(doc, "name", str, problems)
    if "title" in doc:
        _require(doc, "title", str, problems)
    if "context" in doc and _require(doc, "context", dict, problems):
        if doc["context"].get("bench") != bench:
            problems.append(
                f"context.bench must be {bench!r}, got "
                f"{doc['context'].get('bench')!r}"
            )


def validate_trace(doc: dict) -> dict:
    """Validate a ``trace/v2`` document, including the partition
    invariant: for every counted key, the per-phase counts sum to the
    recorded total."""
    problems: list[str] = []
    if doc.get("schema") != "trace/v2":
        problems.append(f"schema must be 'trace/v2', got {doc.get('schema')!r}")
    _check_envelope(doc, "trace", problems)
    if _require(doc, "root", dict, problems):
        _check_span(doc["root"], problems, "root")
    if _require(doc, "totals", dict, problems):
        for key, entry in doc["totals"].items():
            where = f"totals[{key!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            ok_total = _require(entry, "total", int, problems, where + ".")
            ok_phase = _require(entry, "by_phase", dict, problems, where + ".")
            if ok_total and ok_phase:
                phase_sum = sum(entry["by_phase"].values())
                if phase_sum != entry["total"]:
                    problems.append(
                        f"{where}: per-phase counts sum to {phase_sum}, "
                        f"but total is {entry['total']}"
                    )
    if problems:
        raise SchemaError("trace/v2", problems)
    return doc


def validate_metrics_snapshot(doc: dict) -> dict:
    """Validate a ``metrics-snapshot/v2`` document."""
    problems: list[str] = []
    if doc.get("schema") != "metrics-snapshot/v2":
        problems.append(
            f"schema must be 'metrics-snapshot/v2', got {doc.get('schema')!r}"
        )
    _check_envelope(doc, "metrics", problems)
    if _require(doc, "counters", dict, problems):
        for name, value in doc["counters"].items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"counters[{name!r}] must be a non-negative int")
    if _require(doc, "gauges", dict, problems):
        for name, value in doc["gauges"].items():
            if not isinstance(value, _NUM):
                problems.append(f"gauges[{name!r}] must be numeric")
    if _require(doc, "histograms", dict, problems):
        for name, hist in doc["histograms"].items():
            if not isinstance(hist, dict):
                problems.append(f"histograms[{name!r}] must be an object")
                continue
            _require(hist, "count", int, problems, f"histograms[{name!r}].")
            if hist.get("count"):
                for stat in ("sum", "min", "max", "mean", "p50", "p90", "p99"):
                    _require(hist, stat, _NUM, problems, f"histograms[{name!r}].")
    if problems:
        raise SchemaError("metrics-snapshot/v2", problems)
    return doc


_TIMELINE_CLOCKS = ("wall", "virtual")
_TIMELINE_TICK_INTS = (
    "queue_depth", "inflight", "brownout_level",
    "offered", "completed", "dropped", "degraded",
)
_BREAKER_STATES = (None, "closed", "half_open", "open")


def validate_timeline(doc: dict) -> dict:
    """Validate a ``timeline/v1`` document (or row-embedded fragment).

    Beyond shape, checks the trajectory arithmetic the diff sentinel
    relies on: ``count`` must equal the retained ticks, tick indices
    and times must be strictly/weakly monotone, counter deltas must be
    non-negative ints, the cumulative ledgers must be monotone, and the
    ``summary`` block (max level, time-at-level fractions) must follow
    from the ticks it summarizes.
    """
    problems: list[str] = []
    if doc.get("schema") != "timeline/v1":
        problems.append(f"schema must be 'timeline/v1', got {doc.get('schema')!r}")
    _check_envelope(doc, "timeline", problems)
    clock_ok = _require(doc, "clock", str, problems)
    if clock_ok and doc["clock"] not in _TIMELINE_CLOCKS:
        problems.append(
            f"clock must be one of {_TIMELINE_CLOCKS}, got {doc['clock']!r}"
        )
    if _require(doc, "tick_s", _NUM, problems) and doc["tick_s"] <= 0:
        problems.append("tick_s must be > 0")
    if _require(doc, "capacity", int, problems) and doc["capacity"] < 1:
        problems.append("capacity must be >= 1")
    if _require(doc, "dropped_ticks", int, problems) and doc["dropped_ticks"] < 0:
        problems.append("dropped_ticks must be non-negative")
    count_ok = _require(doc, "count", int, problems)
    ticks_ok = _require(doc, "ticks", list, problems)
    levels_seen: dict[int, int] = {}
    max_depth = max_inflight = 0
    if ticks_ok:
        if count_ok and doc["count"] != len(doc["ticks"]):
            problems.append(
                f"count is {doc['count']} but ticks holds {len(doc['ticks'])}"
            )
        last_tick = None
        last_t = None
        last_ledger: dict[str, int] = {}
        for i, entry in enumerate(doc["ticks"]):
            where = f"ticks[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            if _require(entry, "tick", int, problems, where + "."):
                if last_tick is not None and entry["tick"] <= last_tick:
                    problems.append(
                        f"{where}.tick is {entry['tick']}, must exceed the "
                        f"previous tick {last_tick}"
                    )
                last_tick = entry["tick"]
            if _require(entry, "t", _NUM, problems, where + "."):
                if last_t is not None and entry["t"] < last_t - 1e-9:
                    problems.append(
                        f"{where}.t is {entry['t']}, below the previous "
                        f"tick's t {last_t} — times must be monotone"
                    )
                last_t = entry["t"]
            if _require(entry, "counters", dict, problems, where + "."):
                for name, delta in entry["counters"].items():
                    if not isinstance(delta, int) or delta < 0:
                        problems.append(
                            f"{where}.counters[{name!r}] must be a "
                            f"non-negative int (counters are monotone)"
                        )
            if _require(entry, "gauges", dict, problems, where + "."):
                for name, value in entry["gauges"].items():
                    if not isinstance(value, _NUM):
                        problems.append(f"{where}.gauges[{name!r}] must be numeric")
            for key in _TIMELINE_TICK_INTS:
                if _require(entry, key, int, problems, where + ".") \
                        and entry[key] < 0:
                    problems.append(f"{where}.{key} must be non-negative")
            if _require(entry, "queue_wait_ms", _NUM, problems, where + ".") \
                    and entry["queue_wait_ms"] < 0:
                problems.append(f"{where}.queue_wait_ms must be non-negative")
            if entry.get("breaker_state") not in _BREAKER_STATES:
                problems.append(
                    f"{where}.breaker_state must be one of {_BREAKER_STATES}, "
                    f"got {entry.get('breaker_state')!r}"
                )
            for key in ("offered", "completed", "dropped", "degraded"):
                value = entry.get(key)
                if isinstance(value, int):
                    prev = last_ledger.get(key)
                    if prev is not None and value < prev:
                        problems.append(
                            f"{where}.{key} is {value}, below the previous "
                            f"tick's {prev} — ledgers are cumulative"
                        )
                    last_ledger[key] = value
            level = entry.get("brownout_level")
            if isinstance(level, int) and level >= 0:
                levels_seen[level] = levels_seen.get(level, 0) + 1
            if isinstance(entry.get("queue_depth"), int):
                max_depth = max(max_depth, entry["queue_depth"])
            if isinstance(entry.get("inflight"), int):
                max_inflight = max(max_inflight, entry["inflight"])
    if _require(doc, "summary", dict, problems) and ticks_ok:
        summary = doc["summary"]
        checks = [
            ("ticks", len(doc["ticks"])),
            ("max_brownout_level", max(levels_seen) if levels_seen else 0),
            ("max_queue_depth", max_depth),
            ("max_inflight", max_inflight),
        ]
        for key, expected in checks:
            if _require(summary, key, int, problems, "summary.") \
                    and summary[key] != expected:
                problems.append(
                    f"summary.{key} is {summary[key]}, but the ticks say "
                    f"{expected}"
                )
        if _require(summary, "time_at_level", dict, problems, "summary."):
            total = len(doc["ticks"])
            expected_tal = {
                str(level): round(n / total, 6)
                for level, n in sorted(levels_seen.items())
            } if total else {}
            tal = summary["time_at_level"]
            if set(tal) != set(expected_tal):
                problems.append(
                    f"summary.time_at_level covers levels {sorted(tal)}, "
                    f"but the ticks hold {sorted(expected_tal)}"
                )
            else:
                for level, frac in expected_tal.items():
                    got = tal[level]
                    if not isinstance(got, _NUM) or abs(got - frac) > 1e-9:
                        problems.append(
                            f"summary.time_at_level[{level!r}] is {got}, but "
                            f"the ticks say {frac}"
                        )
    if problems:
        raise SchemaError("timeline/v1", problems)
    return doc


def validate_bench_result(doc: dict) -> dict:
    """Validate a ``bench-result/v1`` document (one experiment)."""
    problems: list[str] = []
    if doc.get("schema") != "bench-result/v1":
        problems.append(f"schema must be 'bench-result/v1', got {doc.get('schema')!r}")
    _require(doc, "name", str, problems)
    _require(doc, "title", str, problems)
    if _require(doc, "rows", list, problems):
        for i, row in enumerate(doc["rows"]):
            if not isinstance(row, dict):
                problems.append(f"rows[{i}] must be an object")
    _require(doc, "wall_clock_s", _NUM, problems)
    _require(doc, "total_queries", int, problems)
    _require(doc, "total_samples", int, problems)
    if problems:
        raise SchemaError("bench-result/v1", problems)
    return doc


_LOAD_CLOCKS = ("wall", "virtual")
_LOAD_QUANTILES = ("p50", "p95", "p99")
_KNEE_REASONS = ("throughput", "latency")


def validate_bench_load(doc: dict) -> dict:
    """Validate a ``bench-load/v1`` document (open-loop load sweep).

    Beyond shape, checks the arithmetic the load sentinel relies on:
    per-row ``completed + dropped <= queries``, ``availability`` must
    equal ``(completed - degraded) / queries`` to the row's rounding,
    quantiles must be monotone (p50 <= p95 <= p99, and queueing must
    not exceed end-to-end — the partition invariant's quantile shadow),
    the knee verdict must be internally consistent, and the totals must
    sum over the rows.
    """
    problems: list[str] = []
    if doc.get("schema") != "bench-load/v1":
        problems.append(f"schema must be 'bench-load/v1', got {doc.get('schema')!r}")
    _require(doc, "name", str, problems)
    _require(doc, "title", str, problems)
    rows_ok = _require(doc, "rows", list, problems)
    if rows_ok:
        for i, row in enumerate(doc["rows"]):
            where = f"rows[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{where} must be an object")
                continue
            counts_ok = True
            for key in ("queries", "completed", "dropped", "degraded"):
                if _require(row, key, int, problems, where + "."):
                    if row[key] < 0:
                        problems.append(f"{where}.{key} must be non-negative")
                        counts_ok = False
                else:
                    counts_ok = False
            if counts_ok and row["completed"] + row["dropped"] > row["queries"]:
                problems.append(
                    f"{where}: completed + dropped = "
                    f"{row['completed'] + row['dropped']} exceeds "
                    f"queries = {row['queries']}"
                )
            for key in ("offered_qps", "achieved_qps"):
                if _require(row, key, _NUM, problems, where + ".") and row[key] < 0:
                    problems.append(f"{where}.{key} must be non-negative")
            avail_ok = _require(row, "availability", _NUM, problems, where + ".")
            if avail_ok and counts_ok and row["queries"] > 0:
                expected = round(
                    (row["completed"] - row["degraded"]) / row["queries"], 6
                )
                if abs(row["availability"] - expected) > 1e-9:
                    problems.append(
                        f"{where}.availability is {row['availability']}, but "
                        f"(completed - degraded) / queries = {expected}"
                    )
            if _require(row, "clock", str, problems, where + ".") \
                    and row["clock"] not in _LOAD_CLOCKS:
                problems.append(
                    f"{where}.clock must be one of {_LOAD_CLOCKS}, "
                    f"got {row['clock']!r}"
                )
            _require(row, "arrival", str, problems, where + ".")
            for phase in ("queueing", "latency"):
                prev = None
                for q in _LOAD_QUANTILES:
                    key = f"{q}_{phase}_ms"
                    if not _require(row, key, _NUM, problems, where + "."):
                        prev = None
                        continue
                    if row[key] < 0:
                        problems.append(f"{where}.{key} must be non-negative")
                    if prev is not None and row[key] < prev - 1e-9:
                        problems.append(
                            f"{where}.{key} is {row[key]}, below the lower "
                            f"quantile {prev} — quantiles must be monotone"
                        )
                    prev = row[key]
            for q in _LOAD_QUANTILES:
                lo, hi = row.get(f"{q}_queueing_ms"), row.get(f"{q}_latency_ms")
                if isinstance(lo, _NUM) and isinstance(hi, _NUM) \
                        and hi < lo - 1e-9:
                    problems.append(
                        f"{where}: {q} end-to-end latency {hi} is below its "
                        f"queueing component {lo}"
                    )
            if "timeline" in row:
                try:
                    validate_timeline(row["timeline"])
                except SchemaError as exc:
                    problems.extend(f"{where}.timeline: {p}" for p in exc.problems)
    if _require(doc, "knee", dict, problems):
        knee = doc["knee"]
        detected_ok = _require(knee, "detected", bool, problems, "knee.")
        _require(knee, "rates", list, problems, "knee.")
        if detected_ok and knee["detected"]:
            if _require(knee, "knee_rate", _NUM, problems, "knee.") \
                    and knee["knee_rate"] <= 0:
                problems.append("knee.knee_rate must be > 0 when detected")
            if _require(knee, "reason", str, problems, "knee.") \
                    and knee["reason"] not in _KNEE_REASONS:
                problems.append(
                    f"knee.reason must be one of {_KNEE_REASONS}, "
                    f"got {knee['reason']!r}"
                )
            _require(knee, "index", int, problems, "knee.")
        elif detected_ok:
            if knee.get("knee_rate") is not None:
                problems.append(
                    "knee.knee_rate must be null when no knee was detected"
                )
    if _require(doc, "context", dict, problems):
        if doc["context"].get("bench") != "load":
            problems.append(
                f"context.bench must be 'load', got {doc['context'].get('bench')!r}"
            )
    if rows_ok:
        rows = [r for r in doc["rows"] if isinstance(r, dict)]
        for key in ("total_queries", "total_completed"):
            field = key.removeprefix("total_")
            expected = sum(
                r[field] for r in rows if isinstance(r.get(field), int)
            )
            if _require(doc, key, int, problems) and doc[key] != expected:
                problems.append(
                    f"{key} is {doc[key]}, but the rows sum to {expected}"
                )
    if problems:
        raise SchemaError("bench-load/v1", problems)
    return doc


_OVERLOAD_MODES = ("overload-base", "overload-off", "overload-on")


def validate_bench_overload(doc: dict) -> dict:
    """Validate a ``bench-overload/v1`` document (overload governor).

    Beyond shape, checks the two-ledger arithmetic the overload sentinel
    relies on: calibration rows (``mode="overload-base"``) carry the
    load ledger (``availability = (completed - degraded) / queries``);
    governed rows carry the goodput ledger (``availability = completed
    / queries``) plus ``full_quality = (completed - degraded) /
    queries`` with ``full_quality <= availability`` — brownout may buy
    goodput, never full quality.  The ``comparison`` block's verdicts
    must follow from its own numbers (``floor_met``/``off_below_on``),
    quantiles must be monotone, and the totals must sum over the rows.
    """
    problems: list[str] = []
    if doc.get("schema") != "bench-overload/v1":
        problems.append(
            f"schema must be 'bench-overload/v1', got {doc.get('schema')!r}"
        )
    _require(doc, "name", str, problems)
    _require(doc, "title", str, problems)
    rows_ok = _require(doc, "rows", list, problems)
    if rows_ok:
        for i, row in enumerate(doc["rows"]):
            where = f"rows[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{where} must be an object")
                continue
            mode_ok = _require(row, "mode", str, problems, where + ".")
            if mode_ok and row["mode"] not in _OVERLOAD_MODES:
                problems.append(
                    f"{where}.mode must be one of {_OVERLOAD_MODES}, "
                    f"got {row['mode']!r}"
                )
            counts_ok = True
            for key in ("queries", "completed", "dropped", "degraded"):
                if _require(row, key, int, problems, where + "."):
                    if row[key] < 0:
                        problems.append(f"{where}.{key} must be non-negative")
                        counts_ok = False
                else:
                    counts_ok = False
            if counts_ok and row["completed"] + row["dropped"] > row["queries"]:
                problems.append(
                    f"{where}: completed + dropped = "
                    f"{row['completed'] + row['dropped']} exceeds "
                    f"queries = {row['queries']}"
                )
            governed = mode_ok and row["mode"] in ("overload-off", "overload-on")
            avail_ok = _require(row, "availability", _NUM, problems, where + ".")
            if avail_ok and counts_ok and row["queries"] > 0:
                if governed:
                    expected = round(row["completed"] / row["queries"], 6)
                else:
                    expected = round(
                        (row["completed"] - row["degraded"]) / row["queries"], 6
                    )
                if abs(row["availability"] - expected) > 1e-9:
                    problems.append(
                        f"{where}.availability is {row['availability']}, but "
                        f"the {'goodput' if governed else 'load'} ledger "
                        f"says {expected}"
                    )
            if governed:
                fq_ok = _require(row, "full_quality", _NUM, problems, where + ".")
                if fq_ok and counts_ok and row["queries"] > 0:
                    expected = round(
                        (row["completed"] - row["degraded"]) / row["queries"], 6
                    )
                    if abs(row["full_quality"] - expected) > 1e-9:
                        problems.append(
                            f"{where}.full_quality is {row['full_quality']}, "
                            f"but (completed - degraded) / queries = {expected}"
                        )
                if fq_ok and avail_ok \
                        and row["full_quality"] > row["availability"] + 1e-9:
                    problems.append(
                        f"{where}.full_quality {row['full_quality']} exceeds "
                        f"availability {row['availability']}"
                    )
                for key in ("deadline_shed", "brownout_shed"):
                    if _require(row, key, int, problems, where + ".") \
                            and row[key] < 0:
                        problems.append(f"{where}.{key} must be non-negative")
                _require(row, "brownout", bool, problems, where + ".")
                if mode_ok and row["mode"] == "overload-off" \
                        and row.get("brownout") is True:
                    problems.append(
                        f"{where}: mode 'overload-off' must not run brownout"
                    )
            if _require(row, "clock", str, problems, where + ".") \
                    and row["clock"] not in _LOAD_CLOCKS:
                problems.append(
                    f"{where}.clock must be one of {_LOAD_CLOCKS}, "
                    f"got {row['clock']!r}"
                )
            for phase in ("queueing", "latency"):
                prev = None
                for q in _LOAD_QUANTILES:
                    key = f"{q}_{phase}_ms"
                    if not _require(row, key, _NUM, problems, where + "."):
                        prev = None
                        continue
                    if row[key] < 0:
                        problems.append(f"{where}.{key} must be non-negative")
                    if prev is not None and row[key] < prev - 1e-9:
                        problems.append(
                            f"{where}.{key} is {row[key]}, below the lower "
                            f"quantile {prev} — quantiles must be monotone"
                        )
                    prev = row[key]
            if "timeline" in row:
                try:
                    validate_timeline(row["timeline"])
                except SchemaError as exc:
                    problems.extend(f"{where}.timeline: {p}" for p in exc.problems)
    if _require(doc, "knee", dict, problems):
        knee = doc["knee"]
        detected_ok = _require(knee, "detected", bool, problems, "knee.")
        _require(knee, "rates", list, problems, "knee.")
        if detected_ok and knee["detected"]:
            if _require(knee, "knee_rate", _NUM, problems, "knee.") \
                    and knee["knee_rate"] <= 0:
                problems.append("knee.knee_rate must be > 0 when detected")
            if _require(knee, "reason", str, problems, "knee.") \
                    and knee["reason"] not in _KNEE_REASONS:
                problems.append(
                    f"knee.reason must be one of {_KNEE_REASONS}, "
                    f"got {knee['reason']!r}"
                )
    if _require(doc, "comparison", dict, problems):
        cmp_block = doc["comparison"]
        if _require(cmp_block, "rate", _NUM, problems, "comparison.") \
                and cmp_block["rate"] <= 0:
            problems.append("comparison.rate must be > 0")
        nums_ok = True
        for key in ("availability_on", "availability_off",
                    "full_quality_on", "full_quality_off", "floor"):
            nums_ok = _require(
                cmp_block, key, _NUM, problems, "comparison."
            ) and nums_ok
        floor_ok = _require(cmp_block, "floor_met", bool, problems, "comparison.")
        below_ok = _require(cmp_block, "off_below_on", bool, problems, "comparison.")
        if nums_ok and floor_ok:
            expected = bool(cmp_block["availability_on"] >= cmp_block["floor"])
            if cmp_block["floor_met"] != expected:
                problems.append(
                    f"comparison.floor_met is {cmp_block['floor_met']}, but "
                    f"the availability/floor arithmetic says {expected}"
                )
        if nums_ok and below_ok:
            expected = bool(
                cmp_block["availability_off"] < cmp_block["availability_on"]
            )
            if cmp_block["off_below_on"] != expected:
                problems.append(
                    f"comparison.off_below_on is {cmp_block['off_below_on']}, "
                    f"but the availability arithmetic says {expected}"
                )
    if _require(doc, "context", dict, problems):
        if doc["context"].get("bench") != "overload":
            problems.append(
                f"context.bench must be 'overload', got "
                f"{doc['context'].get('bench')!r}"
            )
    if rows_ok:
        rows = [r for r in doc["rows"] if isinstance(r, dict)]
        for key in ("total_queries", "total_completed"):
            field = key.removeprefix("total_")
            expected = sum(
                r[field] for r in rows if isinstance(r.get(field), int)
            )
            if _require(doc, key, int, problems) and doc[key] != expected:
                problems.append(
                    f"{key} is {doc[key]}, but the rows sum to {expected}"
                )
    if problems:
        raise SchemaError("bench-overload/v1", problems)
    return doc


def validate_bench_observability(doc: dict) -> dict:
    """Validate the top-level ``bench-observability/v1`` summary.

    An experiment entry may carry a ``sampler_overhead`` block (the
    timeline sampler's cost on the fixed-rate wall row).  Its verdict
    arithmetic is enforced: ``overhead_frac`` must follow from the two
    recorded latencies and ``within_budget`` must follow from
    ``overhead_frac <= budget_frac`` — a doctored overhead row fails
    validation, which is the CI tripwire.
    """
    problems: list[str] = []
    if doc.get("schema") != "bench-observability/v1":
        problems.append(
            f"schema must be 'bench-observability/v1', got {doc.get('schema')!r}"
        )
    if _require(doc, "experiments", dict, problems):
        for name, entry in doc["experiments"].items():
            where = f"experiments[{name!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            _require(entry, "title", str, problems, where + ".")
            _require(entry, "wall_clock_s", _NUM, problems, where + ".")
            _require(entry, "total_queries", int, problems, where + ".")
            _require(entry, "total_samples", int, problems, where + ".")
            _require(entry, "sample_batch_histogram", dict, problems, where + ".")
            if "sampler_overhead" not in entry:
                continue
            block = entry["sampler_overhead"]
            bw = where + ".sampler_overhead"
            if not isinstance(block, dict):
                problems.append(f"{bw} must be an object")
                continue
            nums_ok = True
            for key in ("rate", "baseline_p50_latency_ms",
                        "sampled_p50_latency_ms", "overhead_frac",
                        "budget_frac"):
                nums_ok = _require(block, key, _NUM, problems, bw + ".") and nums_ok
            budget_ok = _require(block, "within_budget", bool, problems, bw + ".")
            if nums_ok and block["baseline_p50_latency_ms"] > 0:
                expected = round(
                    block["sampled_p50_latency_ms"]
                    / block["baseline_p50_latency_ms"]
                    - 1.0,
                    6,
                )
                if abs(block["overhead_frac"] - expected) > 1e-6:
                    problems.append(
                        f"{bw}.overhead_frac is {block['overhead_frac']}, but "
                        f"the recorded latencies say {expected}"
                    )
            if nums_ok and budget_ok:
                expected_verdict = bool(
                    block["overhead_frac"] <= block["budget_frac"]
                )
                if block["within_budget"] != expected_verdict:
                    problems.append(
                        f"{bw}.within_budget is {block['within_budget']}, but "
                        f"the overhead/budget arithmetic says {expected_verdict}"
                    )
    if problems:
        raise SchemaError("bench-observability/v1", problems)
    return doc


def validate_chaos_report(doc: dict) -> dict:
    """Validate a ``chaos-report/v1`` document.

    Beyond shape, checks the internal consistency the chaos CLI relies
    on: per-row availability must equal ``1 - degraded/answers`` (to the
    report's rounding), ``meets_target`` must match the target and the
    abort count, and ``all_meet_target`` must be the conjunction of the
    rows.  A report must also be deterministic, so timing fields are
    *forbidden*: any key containing ``wall_clock`` or ``timestamp``
    fails validation.
    """
    problems: list[str] = []
    if doc.get("schema") != "chaos-report/v1":
        problems.append(f"schema must be 'chaos-report/v1', got {doc.get('schema')!r}")
    for banned in ("wall_clock", "timestamp", "time_s"):
        for key in doc:
            if banned in key:
                problems.append(
                    f"deterministic report must not carry timing key {key!r}"
                )
    _require(doc, "name", str, problems)
    _require(doc, "seed", int, problems)
    _require(doc, "lca_seed", int, problems)
    _require(doc, "n", int, problems)
    _require(doc, "epsilon", _NUM, problems)
    _require(doc, "queries_per_batch", int, problems)
    _require(doc, "batches", int, problems)
    _require(doc, "fault_free_equivalence", bool, problems)
    target_ok = _require(doc, "availability_target", _NUM, problems)
    if _require(doc, "retry", dict, problems):
        for key in ("max_retries", "backoff_base_s", "backoff_factor", "jitter"):
            _require(doc["retry"], key, _NUM, problems, "retry.")
    rows_ok = _require(doc, "rows", list, problems)
    if rows_ok:
        for i, row in enumerate(doc["rows"]):
            where = f"rows[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{where} must be an object")
                continue
            for key in ("answers", "degraded", "batch_aborts", "probe_retries",
                        "probe_failures_injected"):
                if _require(row, key, int, problems, where + ".") and row[key] < 0:
                    problems.append(f"{where}.{key} must be non-negative")
            _require(row, "probe_failure_rate", _NUM, problems, where + ".")
            avail_ok = _require(row, "availability", _NUM, problems, where + ".")
            meets_ok = _require(row, "meets_target", bool, problems, where + ".")
            if avail_ok and isinstance(row.get("answers"), int) and row["answers"] > 0 \
                    and isinstance(row.get("degraded"), int):
                expected = round(1.0 - row["degraded"] / row["answers"], 6)
                if abs(row["availability"] - expected) > 1e-9:
                    problems.append(
                        f"{where}.availability is {row['availability']}, "
                        f"but 1 - degraded/answers = {expected}"
                    )
            if avail_ok and meets_ok and target_ok \
                    and isinstance(row.get("batch_aborts"), int):
                expected_meets = bool(
                    row["availability"] >= doc["availability_target"]
                    and row["batch_aborts"] == 0
                )
                if row["meets_target"] != expected_meets:
                    problems.append(
                        f"{where}.meets_target is {row['meets_target']}, "
                        f"but target/abort arithmetic says {expected_meets}"
                    )
    if _require(doc, "all_meet_target", bool, problems) and rows_ok:
        rows = [r for r in doc["rows"] if isinstance(r, dict)]
        if all(isinstance(r.get("meets_target"), bool) for r in rows):
            conjunction = all(r["meets_target"] for r in rows)
            if doc["all_meet_target"] != conjunction:
                problems.append(
                    f"all_meet_target is {doc['all_meet_target']}, but the "
                    f"rows' conjunction is {conjunction}"
                )
    if problems:
        raise SchemaError("chaos-report/v1", problems)
    return doc


def validate_events(doc: dict) -> dict:
    """Validate an ``events/v1`` flight-recorder document.

    Like ``chaos-report/v1``, an events document must be deterministic:
    any timing key (``wall_clock``/``timestamp``/``time_s``) is
    forbidden — ordering is the strictly increasing ``seq`` field.
    """
    problems: list[str] = []
    if doc.get("schema") != "events/v1":
        problems.append(f"schema must be 'events/v1', got {doc.get('schema')!r}")
    for banned in ("wall_clock", "timestamp", "time_s"):
        for key in doc:
            if banned in key:
                problems.append(
                    f"deterministic events document must not carry timing key {key!r}"
                )
    if _require(doc, "capacity", int, problems) and doc["capacity"] < 1:
        problems.append("capacity must be >= 1")
    if _require(doc, "dropped", int, problems) and doc["dropped"] < 0:
        problems.append("dropped must be non-negative")
    count_ok = _require(doc, "count", int, problems)
    if _require(doc, "events", list, problems):
        if count_ok and doc["count"] != len(doc["events"]):
            problems.append(
                f"count is {doc['count']} but events holds {len(doc['events'])}"
            )
        last_seq = 0
        for i, entry in enumerate(doc["events"]):
            where = f"events[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            _require(entry, "kind", str, problems, where + ".")
            if _require(entry, "seq", int, problems, where + "."):
                if entry["seq"] <= last_seq:
                    problems.append(
                        f"{where}.seq is {entry['seq']}, must exceed "
                        f"the previous seq {last_seq}"
                    )
                last_seq = entry["seq"]
            if _require(entry, "attrs", dict, problems, where + "."):
                for banned in ("wall_clock", "timestamp", "time_s"):
                    for key in entry["attrs"]:
                        if banned in key:
                            problems.append(
                                f"{where}.attrs must not carry timing key {key!r}"
                            )
            for ctx_key in ("trace_id", "span_id"):
                if ctx_key in entry and entry[ctx_key] is not None \
                        and not isinstance(entry[ctx_key], str):
                    problems.append(f"{where}.{ctx_key} must be a string or null")
    _require(doc, "context", dict, problems)
    if problems:
        raise SchemaError("events/v1", problems)
    return doc


def validate_bench_diff(doc: dict) -> dict:
    """Validate a ``bench-diff/v1`` document, including its summary
    arithmetic: the regression/improvement/drift counts must equal the
    findings they summarize, and ``ok`` must mean exactly "no
    regressions and no drifts"."""
    problems: list[str] = []
    if doc.get("schema") != "bench-diff/v1":
        problems.append(f"schema must be 'bench-diff/v1', got {doc.get('schema')!r}")
    _require(doc, "baseline", dict, problems)
    _require(doc, "candidate", dict, problems)
    if _require(doc, "threshold", _NUM, problems) and doc["threshold"] <= 1.0:
        problems.append("threshold must be > 1.0")
    _require(doc, "abs_floor_s", _NUM, problems)
    _require(doc, "relative_only", bool, problems)
    _require(doc, "rows_compared", int, problems)
    _require(doc, "rows_missing", list, problems)
    statuses = {"ok": 0, "regression": 0, "improvement": 0, "drift": 0}
    if _require(doc, "findings", list, problems):
        for i, entry in enumerate(doc["findings"]):
            where = f"findings[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where} must be an object")
                continue
            _require(entry, "row", str, problems, where + ".")
            _require(entry, "metric", str, problems, where + ".")
            if _require(entry, "status", str, problems, where + "."):
                if entry["status"] not in statuses:
                    problems.append(
                        f"{where}.status must be one of {sorted(statuses)}, "
                        f"got {entry['status']!r}"
                    )
                else:
                    statuses[entry["status"]] += 1
    for key, expected in (
        ("regressions", statuses["regression"]),
        ("improvements", statuses["improvement"]),
        ("drifts", statuses["drift"]),
    ):
        if _require(doc, key, int, problems) and doc[key] != expected:
            problems.append(
                f"{key} is {doc[key]}, but the findings hold {expected}"
            )
    if _require(doc, "ok", bool, problems):
        expected_ok = statuses["regression"] == 0 and statuses["drift"] == 0
        if doc["ok"] != expected_ok:
            problems.append(
                f"ok is {doc['ok']}, but the findings say {expected_ok}"
            )
    if problems:
        raise SchemaError("bench-diff/v1", problems)
    return doc


_CELL_KINDS = ("approx", "load", "chaos", "adversarial", "overload")
_CELL_OUTCOMES = ("pass", "fail", "expected_failure", "error")
_CELL_EXPECTS = ("pass", "budget_failure")


def validate_suite_report(doc: dict) -> dict:
    """Validate a ``suite-report/v1`` document (scenario-matrix run).

    Beyond shape, checks the outcome arithmetic the suite runner relies
    on: a cell's ``outcome`` must follow from its checks and its
    ``expect`` (all checks ok → ``pass``, or ``expected_failure`` for
    ``budget_failure`` cells), the ``summary`` counters must match the
    cells, and ``ok`` must mean exactly "no failures and no errors".
    When ``deterministic`` is true, timing keys
    (``wall_clock``/``timestamp``/``time_s``) are forbidden at the top
    level and in the sentinel rows — a deterministic report must be a
    pure function of its seeds.
    """
    problems: list[str] = []
    if doc.get("schema") != "suite-report/v1":
        problems.append(f"schema must be 'suite-report/v1', got {doc.get('schema')!r}")
    _require(doc, "name", str, problems)
    _require(doc, "title", str, problems)
    det_ok = _require(doc, "deterministic", bool, problems)
    if det_ok and doc["deterministic"]:
        scopes: list[tuple[str, dict]] = [("", doc)]
        if isinstance(doc.get("rows"), list):
            scopes += [
                (f"rows[{i}].", r)
                for i, r in enumerate(doc["rows"])
                if isinstance(r, dict)
            ]
        for where, scope in scopes:
            for banned in ("wall_clock", "timestamp", "time_s"):
                for key in scope:
                    if banned in key:
                        problems.append(
                            f"deterministic report must not carry timing key "
                            f"{where}{key!r}"
                        )
    counts = {"passed": 0, "failed": 0, "expected_failures": 0, "errors": 0}
    seen_ids: set[str] = set()
    if _require(doc, "cells", list, problems):
        for i, cell in enumerate(doc["cells"]):
            where = f"cells[{i}]"
            if not isinstance(cell, dict):
                problems.append(f"{where} must be an object")
                continue
            if _require(cell, "id", str, problems, where + "."):
                if cell["id"] in seen_ids:
                    problems.append(f"{where}.id {cell['id']!r} is duplicated")
                seen_ids.add(cell["id"])
            if _require(cell, "kind", str, problems, where + ".") \
                    and cell["kind"] not in _CELL_KINDS:
                problems.append(
                    f"{where}.kind must be one of {_CELL_KINDS}, got {cell['kind']!r}"
                )
            expect_ok = _require(cell, "expect", str, problems, where + ".")
            if expect_ok and cell["expect"] not in _CELL_EXPECTS:
                problems.append(
                    f"{where}.expect must be one of {_CELL_EXPECTS}, "
                    f"got {cell['expect']!r}"
                )
            outcome_ok = _require(cell, "outcome", str, problems, where + ".")
            if outcome_ok and cell["outcome"] not in _CELL_OUTCOMES:
                problems.append(
                    f"{where}.outcome must be one of {_CELL_OUTCOMES}, "
                    f"got {cell['outcome']!r}"
                )
            _require(cell, "metrics", dict, problems, where + ".")
            checks_ok = _require(cell, "checks", list, problems, where + ".")
            all_checks_ok = None
            if checks_ok:
                all_checks_ok = True
                for j, check in enumerate(cell["checks"]):
                    cw = f"{where}.checks[{j}]"
                    if not isinstance(check, dict):
                        problems.append(f"{cw} must be an object")
                        all_checks_ok = None
                        continue
                    _require(check, "name", str, problems, cw + ".")
                    if _require(check, "ok", bool, problems, cw + "."):
                        all_checks_ok = all_checks_ok and check["ok"]
                    else:
                        all_checks_ok = None
            if (
                outcome_ok
                and expect_ok
                and cell["outcome"] != "error"
                and all_checks_ok is not None
                and cell["outcome"] in _CELL_OUTCOMES
                and cell["expect"] in _CELL_EXPECTS
            ):
                expected_outcome = (
                    ("expected_failure" if cell["expect"] == "budget_failure"
                     else "pass")
                    if all_checks_ok
                    else "fail"
                )
                if cell["outcome"] != expected_outcome:
                    problems.append(
                        f"{where}.outcome is {cell['outcome']!r}, but the "
                        f"checks/expect arithmetic says {expected_outcome!r}"
                    )
            if outcome_ok and cell["outcome"] in _CELL_OUTCOMES:
                counts[
                    {
                        "pass": "passed",
                        "fail": "failed",
                        "expected_failure": "expected_failures",
                        "error": "errors",
                    }[cell["outcome"]]
                ] += 1
    if _require(doc, "rows", list, problems):
        for i, row in enumerate(doc["rows"]):
            where = f"rows[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{where} must be an object")
                continue
            mode_ok = _require(row, "mode", str, problems, where + ".")
            if mode_ok and not row["mode"].startswith("suite:"):
                problems.append(
                    f"{where}.mode must start with 'suite:', got {row['mode']!r}"
                )
            if mode_ok and seen_ids and row["mode"].startswith("suite:") \
                    and row["mode"][len("suite:"):] not in seen_ids:
                problems.append(
                    f"{where}.mode {row['mode']!r} names no cell in the report"
                )
    if _require(doc, "summary", dict, problems):
        summary = doc["summary"]
        if _require(summary, "cells", int, problems, "summary.") \
                and isinstance(doc.get("cells"), list) \
                and summary["cells"] != len(doc["cells"]):
            problems.append(
                f"summary.cells is {summary['cells']}, but the report "
                f"holds {len(doc['cells'])} cells"
            )
        for key, expected in counts.items():
            if _require(summary, key, int, problems, "summary.") \
                    and isinstance(doc.get("cells"), list) \
                    and summary[key] != expected:
                problems.append(
                    f"summary.{key} is {summary[key]}, but the cells "
                    f"hold {expected}"
                )
    if _require(doc, "ok", bool, problems) and isinstance(doc.get("cells"), list):
        expected_ok = counts["failed"] == 0 and counts["errors"] == 0
        if doc["ok"] != expected_ok:
            problems.append(
                f"ok is {doc['ok']}, but the cell outcomes say {expected_ok}"
            )
    if _require(doc, "context", dict, problems):
        if doc["context"].get("bench") != "suite":
            problems.append(
                f"context.bench must be 'suite', got "
                f"{doc['context'].get('bench')!r}"
            )
    if problems:
        raise SchemaError("suite-report/v1", problems)
    return doc


_VALIDATORS = {
    "trace": validate_trace,
    "chaos": validate_chaos_report,
    "metrics": validate_metrics_snapshot,
    "timeline": validate_timeline,
    "bench-result": validate_bench_result,
    "bench-load": validate_bench_load,
    "bench-overload": validate_bench_overload,
    "bench-observability": validate_bench_observability,
    "events": validate_events,
    "bench-diff": validate_bench_diff,
    "suite-report": validate_suite_report,
}


def validate(kind: str, doc: dict) -> dict:
    """Dispatch to the validator for ``kind`` (see ``--kind`` choices)."""
    if kind not in _VALIDATORS:
        raise ValueError(f"unknown schema kind {kind!r}; known: {sorted(_VALIDATORS)}")
    return _VALIDATORS[kind](doc)


def main(argv: list[str] | None = None) -> int:
    """CLI: validate JSON files against one of the documented schemas."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate observability JSON documents",
    )
    parser.add_argument("--kind", required=True, choices=sorted(_VALIDATORS))
    parser.add_argument("paths", nargs="+", help="JSON files to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            validate(args.kind, json.loads(pathlib.Path(path).read_text()))
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"{path}: FAIL\n{exc}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: ok ({args.kind})")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
