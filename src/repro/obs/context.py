"""First-class run contexts: the self-rerun convention as an API.

Every bench document this repo emits carries a ``context`` block whose
``bench`` key names the workload kind and whose remaining keys are the
full rerun configuration — a committed baseline describes its own
reproduction.  That convention grew up as private plumbing inside the
CLI; :class:`RunContext` promotes it to a shared dataclass:

* ``build`` — construct from a kind plus config kwargs;
* ``embed()`` — the JSON ``context`` block to put in a document;
* ``from_document()`` — reconstruct from any document that carries a
  context block (old documents missing keys stay readable: absent
  config keys fall back to each runner's defaults);
* ``rerun()`` — produce a fresh document from the context alone, which
  is what ``repro obs-diff --fresh`` and ``repro suite <report>`` run.

The rerun dispatch imports lazily (load/serve/suite import the obs
layer, not the other way round), so this module stays dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["RunContext"]

#: Context kinds with a registered rerun recipe.
RERUNNABLE_BENCHES = ("cold", "serve", "load", "overload", "chaos", "suite", "shm")


@dataclass(frozen=True)
class RunContext:
    """One run's kind (``bench``) plus its full configuration."""

    bench: str
    config: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def build(cls, bench: str, **config: Any) -> "RunContext":
        """Construct from a kind and config kwargs (skipping ``None``-valued
        kwargs keeps embedded blocks minimal)."""
        return cls(bench=bench, config={k: v for k, v in config.items()})

    @classmethod
    def from_document(
        cls, doc: Mapping[str, Any], *, default_bench: str = "cold"
    ) -> "RunContext":
        """Reconstruct from a document's ``context`` block.

        Pre-``RunContext`` documents (or hand-written ones) may miss the
        ``bench`` key or the whole block; they reconstruct against
        ``default_bench`` with whatever keys are present.
        """
        ctx = dict(doc.get("context") or {})
        bench = ctx.pop("bench", None) or default_bench
        return cls(bench=str(bench), config=ctx)

    def embed(self, **extra: Any) -> dict:
        """The JSON ``context`` block: ``bench`` plus the flat config."""
        out = {"bench": self.bench}
        out.update(self.config)
        out.update(extra)
        return out

    @property
    def deterministic(self) -> bool:
        """True iff a rerun of this context must be byte-identical.

        Virtual-clock load sweeps, chaos sweeps, and suite runs are
        seeded end to end; cold/serve benches measure wall clock on
        whatever hardware runs them.
        """
        if self.bench in ("load", "overload"):
            return str(self.config.get("clock", "virtual")) == "virtual"
        return self.bench in ("chaos", "suite")

    def rerun(self) -> dict:
        """Produce a fresh document from this context alone.

        ``load``/``chaos``/``suite`` contexts carry their full sweep
        configuration, so the rerun is exact (and, when
        :attr:`deterministic`, byte-identical).  ``cold``/``serve``
        contexts describe wall-clock benches: the rerun is a deliberately
        tiny run keeping the baseline's family/epsilon/seed, meant for
        relative-metric comparison only.
        """
        cfg = dict(self.config)
        if self.bench == "load":
            from ..load.sweep import run_load_sweep

            return run_load_sweep(cfg)[2]
        if self.bench == "overload":
            from ..load.overload_sweep import run_overload_sweep

            return run_overload_sweep(cfg)[2]
        if self.bench == "suite":
            from ..suite import SuiteConfig, SuiteRunner

            suite_cfg = SuiteConfig.from_dict(cfg.get("suite") or cfg)
            return SuiteRunner(suite_cfg).run().document()
        if self.bench == "chaos":
            from ..core.parameters import LCAParameters
            from ..faults import RetryPolicy, chaos_sweep
            from ..knapsack.generators import generate

            inst = generate(
                str(cfg.get("family", "uniform")),
                int(cfg.get("n", 2000)),
                seed=int(cfg.get("instance_seed", 0)),
            )
            cap = int(cfg.get("cap", 4_000))
            params = (
                LCAParameters.calibrated(
                    float(cfg.get("epsilon", 0.1)), max_nrq=cap, max_m_large=cap
                )
                if cap
                else None
            )
            chaos_seed = int(cfg.get("chaos_seed", 7))
            return chaos_sweep(
                inst,
                epsilon=float(cfg.get("epsilon", 0.1)),
                lca_seed=int(cfg.get("lca_seed", 42)),
                chaos_seed=chaos_seed,
                rates=tuple(float(r) for r in cfg.get("rates", (0.0, 0.05, 0.1))),
                queries=int(cfg.get("queries", 40)),
                batches=int(cfg.get("batches", 3)),
                availability_target=float(cfg.get("availability_target", 0.99)),
                params=params,
                retry=RetryPolicy(
                    max_retries=int(cfg.get("retries", 3)), seed=chaos_seed
                ),
                corruption_rate=float(cfg.get("corruption_rate", 0.0)),
                latency_spike_rate=float(cfg.get("latency_spike_rate", 0.0)),
                audit=bool(cfg.get("audit", False)),
                context=self,
            )
        if self.bench == "cold":
            from ..knapsack.generators import generate
            from ..serve.bench import bench_cold_document, cold_pipeline_rows

            inst = generate(
                str(cfg.get("family", "planted_lsg")),
                2000,
                seed=int(cfg.get("seed", 0)),
            )
            rows = cold_pipeline_rows(
                inst,
                epsilon=float(cfg.get("epsilon", 0.1)),
                seed=int(cfg.get("lca_seed", 7)),
                queries=2,
            )
            return bench_cold_document(rows)
        if self.bench == "shm":
            from ..serve.bench import bench_shm_document, shm_scale_rows

            sizes = [int(s) for s in cfg.get("rerun_sizes", (20_000,))]
            rows = shm_scale_rows(
                sizes,
                family=str(cfg.get("family", "planted_lsg")),
                instance_seed=int(cfg.get("instance_seed", 0)),
                epsilon=float(cfg.get("epsilon", 0.1)),
                seed=int(cfg.get("lca_seed", 7)),
                queries=int(cfg.get("queries", 32)),
                workers=int(cfg.get("workers", 2)),
            )
            return bench_shm_document(rows, **{**cfg, "rerun_sizes": sizes})
        if self.bench == "serve":
            from ..knapsack.generators import generate
            from ..serve.bench import bench_serve_document, serve_throughput_rows

            inst = generate(
                str(cfg.get("family", "uniform")), 2000, seed=int(cfg.get("seed", 0))
            )
            rows = serve_throughput_rows(
                inst,
                epsilon=float(cfg.get("epsilon", 0.1)),
                seed=int(cfg.get("lca_seed", 7)),
                queries=100,
                batch=50,
                workers=2,
                baseline_queries=5,
            )
            return bench_serve_document(rows)
        raise ValueError(
            f"no rerun recipe for bench kind {self.bench!r}; "
            f"known: {RERUNNABLE_BENCHES}"
        )
