"""Deterministic time-series sampling: the ``timeline/v1`` plane.

Everything the observability stack records today is an end-of-run
aggregate — counters, histograms, a flight-recorder event stream.  The
paper's claims, though, are *trajectory* claims: brownout levels step
up and back down as queueing pressure crosses the controller's
hysteresis bands, breaker state flips as failures accumulate, and the
Section 3 impossibility results bite exactly *when* the queue outruns
the worker pool.  :class:`TimelineSampler` captures that trajectory as
a bounded ring of tick samples:

* **counter deltas** — what changed in the
  :class:`~repro.obs.metrics.MetricsRegistry` since the previous tick
  (only non-zero deltas are stored, so an idle registry costs nothing);
* **gauge levels** — current values of every registered gauge;
* **governor state** — queue depth, head-of-queue wait, inflight
  workers, brownout level, breaker state, and the cumulative
  offered/completed/dropped/degraded ledgers the availability story is
  told from.

Two clock regimes, same discipline as ``bench-load/v1``:

* ``clock="virtual"`` — ticks sit on a fixed grid of virtual seconds
  (``tick_s``) inside the discrete-event simulation, so a timeline is a
  pure function of the seeds and replays **byte-identically** (the CI
  ``cmp`` contract).
* ``clock="wall"`` — ticks fire on a wall interval in live runs (the
  load harness's asyncio sampler, the NDJSON endpoint's background
  task, ``repro top``'s poll loop).

**Shard-local capture.**  A forked worker inherits the parent's active
sampler; :func:`~repro.obs.runtime.reset_worker_runtime` swaps in a
:meth:`fresh` one, the worker captures locally from zero, and the
parent folds the shipped :meth:`state` back with :meth:`merge_state` —
winners only, through the same ``obs_state`` path that merges the
registry and trace (losing shard attempts are dropped, exactly like
their cost bills).  Merge semantics per tick index: counter deltas and
occupancy counts **add**, brownout level and gauges take the **max**,
breaker state takes the **worst** — so K shard timelines merge into
the timeline one process observing all K streams would have recorded.
"""

from __future__ import annotations

from collections import deque

from ..errors import ReproError

__all__ = ["TIMELINE_SCHEMA", "TimelineSampler", "merge_timeline_states"]

TIMELINE_SCHEMA = "timeline/v1"

#: Worst-first ordering for breaker state merges.
_BREAKER_RANK = {None: 0, "closed": 1, "half_open": 2, "open": 3}

_CLOCK_DEFAULT_TICK_S = {"virtual": 0.05, "wall": 0.25}


def _merge_samples(into: dict, other: dict) -> None:
    """Fold one shard's tick sample into ``into`` (same tick index)."""
    counters = into["counters"]
    for name, delta in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + int(delta)
    gauges = into["gauges"]
    for name, value in other.get("gauges", {}).items():
        value = float(value)
        if name not in gauges or value > gauges[name]:
            gauges[name] = value
    for key in ("queue_depth", "inflight", "offered", "completed",
                "dropped", "degraded"):
        into[key] = int(into.get(key, 0)) + int(other.get(key, 0))
    into["queue_wait_ms"] = round(
        max(float(into.get("queue_wait_ms", 0.0)),
            float(other.get("queue_wait_ms", 0.0))),
        4,
    )
    into["brownout_level"] = max(
        int(into.get("brownout_level", 0)), int(other.get("brownout_level", 0))
    )
    if _BREAKER_RANK.get(other.get("breaker_state"), 0) > _BREAKER_RANK.get(
        into.get("breaker_state"), 0
    ):
        into["breaker_state"] = other["breaker_state"]
    into["t"] = round(max(float(into.get("t", 0.0)), float(other.get("t", 0.0))), 9)


class TimelineSampler:
    """A bounded ring of tick samples over one run.

    Parameters
    ----------
    clock:
        ``"virtual"`` (deterministic grid) or ``"wall"`` (live interval).
    tick_s:
        Grid spacing (virtual seconds) or sampling interval (wall
        seconds).  Defaults per clock: 0.05 virtual, 0.25 wall.
    capacity:
        Ring bound; when full, the *oldest* tick is evicted and counted
        in ``dropped_ticks`` — the ring keeps the most recent window,
        honestly labelled, never silently truncated.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to diff on
        every tick.  ``None`` records governor state only (the virtual
        harness passes the global registry; its counters only move
        between runs, so virtual deltas stay empty and byte-stable).
    """

    def __init__(
        self,
        *,
        clock: str = "virtual",
        tick_s: float | None = None,
        capacity: int = 512,
        registry=None,
    ) -> None:
        if clock not in ("virtual", "wall"):
            raise ReproError(f"clock must be 'wall' or 'virtual', got {clock!r}")
        if tick_s is None:
            tick_s = _CLOCK_DEFAULT_TICK_S[clock]
        if tick_s <= 0:
            raise ReproError(f"tick_s must be > 0, got {tick_s}")
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.tick_s = float(tick_s)
        self.capacity = int(capacity)
        self._registry = registry
        self._ring: deque[dict] = deque()
        self._seq = 0
        self._dropped = 0
        self._prev_counters: dict[str, int] = (
            dict(registry.counter_values()) if registry is not None else {}
        )

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Ticks currently held in the ring."""
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Ticks evicted because the ring was full."""
        return self._dropped

    def fresh(self) -> "TimelineSampler":
        """An empty sampler with this one's configuration.

        Used by ``reset_worker_runtime``: a forked shard inherits the
        parent's sampler object and must replace it with a zeroed one
        (same clock, same grid) before capturing its own local ticks.
        """
        return TimelineSampler(
            clock=self.clock,
            tick_s=self.tick_s,
            capacity=self.capacity,
            registry=self._registry,
        )

    # ------------------------------------------------------------------
    def tick(
        self,
        t: float,
        *,
        queue_depth: int = 0,
        queue_wait_s: float = 0.0,
        inflight: int = 0,
        brownout_level: int = 0,
        breaker_state: str | None = None,
        offered: int = 0,
        completed: int = 0,
        dropped: int = 0,
        degraded: int = 0,
    ) -> dict:
        """Record one tick at time ``t`` (seconds since the run began).

        Counter deltas against the previous tick come from the attached
        registry; everything else is governor state the caller observed.
        Returns the recorded sample.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        if self._registry is not None:
            current = self._registry.counter_values()
            for name, value in current.items():
                delta = value - self._prev_counters.get(name, 0)
                if delta:
                    counters[name] = delta
            self._prev_counters = current
            gauges = {
                name: value
                for name, value in self._registry.gauge_values().items()
                if value
            }
        sample = {
            "tick": self._seq,
            "t": round(float(t), 9),
            "counters": counters,
            "gauges": gauges,
            "queue_depth": int(queue_depth),
            "queue_wait_ms": round(float(queue_wait_s) * 1e3, 4),
            "inflight": int(inflight),
            "brownout_level": int(brownout_level),
            "breaker_state": breaker_state,
            "offered": int(offered),
            "completed": int(completed),
            "dropped": int(dropped),
            "degraded": int(degraded),
        }
        self._seq += 1
        if len(self._ring) >= self.capacity:
            self._ring.popleft()
            self._dropped += 1
        self._ring.append(sample)
        return sample

    def capture(self, t: float = 0.0) -> dict:
        """Registry-only tick: counter deltas and gauge levels, no
        governor state.  What a shard worker records around one batch."""
        return self.tick(t)

    def samples(self) -> list[dict]:
        """The retained ticks, oldest first."""
        return list(self._ring)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Trajectory aggregates: the brownout staircase condensed.

        ``time_at_level`` maps each brownout level seen to the fraction
        of retained ticks spent there (rounded to 1e-6); the fractions
        are the dimensionless "ratio" rows the diff sentinel compares
        across hardware.
        """
        ticks = list(self._ring)
        total = len(ticks)
        if not total:
            return {
                "ticks": 0,
                "max_brownout_level": 0,
                "max_queue_depth": 0,
                "max_inflight": 0,
                "time_at_level": {},
            }
        at_level: dict[int, int] = {}
        for s in ticks:
            level = int(s["brownout_level"])
            at_level[level] = at_level.get(level, 0) + 1
        return {
            "ticks": total,
            "max_brownout_level": max(at_level),
            "max_queue_depth": max(int(s["queue_depth"]) for s in ticks),
            "max_inflight": max(int(s["inflight"]) for s in ticks),
            "time_at_level": {
                str(level): round(n / total, 6)
                for level, n in sorted(at_level.items())
            },
        }

    def fragment(self) -> dict:
        """The embeddable ``timeline/v1`` block a bench row carries."""
        return {
            "schema": TIMELINE_SCHEMA,
            "clock": self.clock,
            "tick_s": self.tick_s,
            "capacity": self.capacity,
            "count": len(self._ring),
            "dropped_ticks": self._dropped,
            "ticks": self.samples(),
            "summary": self.summary(),
        }

    def document(
        self,
        *,
        name: str = "timeline",
        title: str = "Telemetry timeline: sampled governor and registry state",
        **context,
    ):
        """A standalone ``timeline/v1`` :class:`~repro.obs.schema.BenchDocument`.

        Virtual timelines are written with the deterministic byte
        discipline (sorted keys, trailing newline) so two runs of the
        same seeds ``cmp`` equal.
        """
        from .context import RunContext
        from .schema import BenchDocument

        return BenchDocument.build(
            "timeline",
            name=name,
            title=title,
            context=RunContext(bench="timeline", config=context),
            deterministic=self.clock == "virtual",
            **self.fragment(),
        )

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Picklable shard-local capture for the ``obs_state`` path."""
        return {
            "clock": self.clock,
            "tick_s": self.tick_s,
            "capacity": self.capacity,
            "dropped_ticks": self._dropped,
            "ticks": self.samples(),
        }

    def merge_state(self, state: dict) -> None:
        """Fold one shard's :meth:`state` into this sampler, tick-for-tick.

        Samples align on their ``tick`` index: deltas and occupancy add,
        levels take the max, breaker state takes the worst — see the
        module docstring for why a merged timeline equals the timeline
        of one process that observed every stream.
        """
        by_tick = {int(s["tick"]): s for s in self._ring}
        for other in state.get("ticks", ()):
            idx = int(other["tick"])
            mine = by_tick.get(idx)
            if mine is None:
                sample = {
                    "tick": idx,
                    "t": round(float(other.get("t", 0.0)), 9),
                    "counters": dict(other.get("counters", {})),
                    "gauges": dict(other.get("gauges", {})),
                    "queue_depth": int(other.get("queue_depth", 0)),
                    "queue_wait_ms": round(float(other.get("queue_wait_ms", 0.0)), 4),
                    "inflight": int(other.get("inflight", 0)),
                    "brownout_level": int(other.get("brownout_level", 0)),
                    "breaker_state": other.get("breaker_state"),
                    "offered": int(other.get("offered", 0)),
                    "completed": int(other.get("completed", 0)),
                    "dropped": int(other.get("dropped", 0)),
                    "degraded": int(other.get("degraded", 0)),
                }
                if len(self._ring) >= self.capacity:
                    self._ring.popleft()
                    self._dropped += 1
                self._ring.append(sample)
                by_tick[idx] = sample
                self._seq = max(self._seq, idx + 1)
            else:
                _merge_samples(mine, other)
        self._dropped += int(state.get("dropped_ticks", 0))
        # Ring order is tick order; merged-in ticks may interleave.
        self._ring = deque(sorted(self._ring, key=lambda s: s["tick"]))


def merge_timeline_states(states, **sampler_kwargs) -> TimelineSampler:
    """Merge shard-local :meth:`TimelineSampler.state` blocks into one
    sampler — the convenience form the parity tests exercise."""
    states = [s for s in states if s]
    if states and "clock" not in sampler_kwargs:
        sampler_kwargs["clock"] = str(states[0].get("clock", "virtual"))
    if states and "tick_s" not in sampler_kwargs:
        sampler_kwargs["tick_s"] = float(states[0].get("tick_s") or 0.05)
    merged = TimelineSampler(**sampler_kwargs)
    for state in states:
        merged.merge_state(state)
    return merged
