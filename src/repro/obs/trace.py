"""Span-based tracing with thread-local context and a no-op fast path.

A :class:`Span` covers one algorithmic phase (``"eps.estimate"``,
``"oracle.reveal"``, ...).  Spans nest: entering a span while another is
active makes it a child, so one LCA query yields a tree whose leaves
are exactly the phases where resources were spent.  Instrumented code
attributes resource events to the *innermost* active span via
:meth:`Tracer.add`, which is what makes per-phase counts partition the
totals: every charged oracle query lands in exactly one span, so the
per-phase counts sum to ``QueryOracle.queries_used`` (the property the
``repro trace`` CLI and the hypothesis tests check).

The tracer is **disabled by default**.  Disabled, ``span()`` returns a
shared singleton whose ``__enter__``/``__exit__`` do nothing and
``add()`` returns after one attribute check — hot paths pay a few
nanoseconds, not a tree allocation.  Context is thread-local, so fleet
and cluster simulations can trace concurrently without cross-talk.

**Trace context crosses execution boundaries.**  Every span carries a
``trace_id`` plus a hierarchical, deterministic ``span_id`` (the root is
``"0"``, its k-th child ``"0.k"``, and so on).  A worker — a pool
thread or a forked subprocess — *adopts* the parent's context via
:meth:`Tracer.adopt`, so its local root span slots into the parent tree
at a predetermined id; the finished subtree is serialized with
:func:`span_to_payload`, shipped home (a payload is plain dict/list
data, so it pickles across processes), rebuilt with
:func:`span_from_payload`, and grafted under the parent span with
:meth:`Tracer.graft`.  Because attribution stays exclusive throughout,
the phase-partition invariant holds over the *merged* tree exactly as
it does over a single-process one.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "Span",
    "Tracer",
    "phase_counts",
    "span_from_payload",
    "span_to_payload",
]

# v2: trace documents ride the BenchDocument/RunContext envelope (name,
# title, context.bench="trace"); node shape is unchanged from v1.
TRACE_SCHEMA = "trace/v2"


class Span:
    """One timed, counted node of a trace tree."""

    __slots__ = (
        "name",
        "start",
        "end",
        "children",
        "counts",
        "trace_id",
        "span_id",
        "_frozen_duration",
    )

    def __init__(
        self, name: str, *, trace_id: str = "", span_id: str = "0"
    ) -> None:
        self.name = name
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list[Span] = []
        self.counts: dict[str, int] = {}
        self.trace_id = trace_id
        self.span_id = span_id
        # Set on deserialized spans, whose start/end perf-counter values
        # belong to another process and mean nothing here.
        self._frozen_duration: float | None = None

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds (to now, if the span is still open)."""
        if self._frozen_duration is not None:
            return self._frozen_duration
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def own_count(self, key: str) -> int:
        """Events attributed to this span itself (exclusive of children)."""
        return self.counts.get(key, 0)

    def total_count(self, key: str) -> int:
        """Events in this span's whole subtree (inclusive)."""
        return self.own_count(key) + sum(c.total_count(key) for c in self.children)

    def walk(self):
        """Yield ``(span, depth)`` in pre-order."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def to_dict(self) -> dict:
        """JSON-ready form of the subtree (a ``trace/v2`` node)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": self.duration,
            "counts": dict(self.counts),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, children={len(self.children)}, counts={self.counts})"


def span_to_payload(root: Span) -> dict:
    """Serialize a finished span tree for shipment across a process
    boundary (plain dicts/lists — picklable and JSON-ready)."""
    return {"trace_id": root.trace_id, "root": root.to_dict()}


def _span_from_node(node: dict, trace_id: str) -> Span:
    span = Span(
        str(node["name"]),
        trace_id=trace_id,
        span_id=str(node.get("span_id", "0")),
    )
    span.end = span.start
    span._frozen_duration = float(node.get("duration_s", 0.0))
    span.counts = {str(k): int(v) for k, v in node.get("counts", {}).items()}
    span.children = [_span_from_node(c, trace_id) for c in node.get("children", ())]
    return span


def span_from_payload(payload: dict) -> Span:
    """Rebuild a :func:`span_to_payload` tree (durations frozen as
    recorded in the originating process)."""
    return _span_from_node(payload["root"], str(payload.get("trace_id", "")))


def phase_counts(root: Span, key: str) -> dict[str, int]:
    """Exclusive per-phase totals for ``key`` over a trace tree.

    Spans with the same name pool their counts; phases that saw no
    events are omitted.  Because attribution is exclusive, the returned
    values sum to ``root.total_count(key)`` exactly.
    """
    out: dict[str, int] = {}
    for span, _depth in root.walk():
        n = span.own_count(key)
        if n:
            out[span.name] = out.get(span.name, 0) + n
    return out


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that pushes/pops one live :class:`Span`."""

    __slots__ = ("_tracer", "_name", "_span")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._push(self._name)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        if self._span is not None:
            self._tracer._pop(self._span)
        return False


class Tracer:
    """Thread-local span stack plus a bounded log of finished roots.

    Use the module-global instance in :mod:`repro.obs.runtime` unless a
    component wants private traces.  Typical use::

        tracer.enable()
        with tracer.span("repro.trace") as root:
            lca.answer(7)
        queries_by_phase = phase_counts(root, "queries")
    """

    def __init__(self, *, keep_roots: int = 64) -> None:
        self._local = threading.local()
        self._enabled = False
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=keep_roots)
        self._trace_seq = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded."""
        return self._enabled

    def enable(self) -> None:
        """Start recording spans."""
        self._enabled = True

    def disable(self) -> None:
        """Stop recording; open spans keep collecting until they exit."""
        self._enabled = False

    # ------------------------------------------------------------------
    def span(self, name: str) -> "_ActiveSpan | _NullSpan":
        """Context manager for one phase; no-op when disabled.

        ``with tracer.span(...) as s:`` binds the live :class:`Span`
        (or ``None`` when disabled) so callers can harvest the finished
        tree without reaching into the tracer.
        """
        if not self._enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def add(self, key: str, n: int = 1) -> None:
        """Attribute ``n`` events to the innermost active span.

        Silently drops the events when disabled or no span is open —
        registry counters (always on) still see them.
        """
        if not self._enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            top = stack[-1]
            top.counts[key] = top.counts.get(key, 0) + n

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_ids(self) -> tuple[str | None, str | None]:
        """``(trace_id, span_id)`` of the innermost open span on this
        thread, or ``(None, None)`` when no span is open."""
        span = self.current()
        if span is None:
            return (None, None)
        return (span.trace_id, span.span_id)

    def adopt(self, trace_id: str, span_id: str) -> None:
        """Adopt a remote trace context on this thread (one-shot).

        The *next* root span opened here continues trace ``trace_id``
        with the predetermined id ``span_id`` instead of starting a
        fresh trace — how a shard (pool thread or subprocess) slots its
        subtree into the parent's tree at a known position.
        """
        self._local.adopt = (str(trace_id), str(span_id))

    # ------------------------------------------------------------------
    def _push(self, name: str) -> Span:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            parent = stack[-1]
            span = Span(
                name,
                trace_id=parent.trace_id,
                span_id=f"{parent.span_id}.{len(parent.children)}",
            )
            parent.children.append(span)
        else:
            adopted = getattr(self._local, "adopt", None)
            if adopted is not None:
                trace_id, span_id = adopted
                self._local.adopt = None
            else:
                with self._lock:
                    self._trace_seq += 1
                    trace_id, span_id = f"t{self._trace_seq}", "0"
            span = Span(name, trace_id=trace_id, span_id=span_id)
        stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # unwound out of order (exception paths)
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if not stack:
            with self._lock:
                self._finished.append(span)

    # ------------------------------------------------------------------
    def finished_roots(self) -> list[Span]:
        """Completed root spans, oldest first (bounded ring)."""
        with self._lock:
            return list(self._finished)

    def last_root(self) -> Span | None:
        """Most recently completed root span, if any."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def clear(self) -> None:
        """Drop all finished roots (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------------
    def graft(self, parent: Span, child: Span) -> None:
        """Attach a finished shard subtree under ``parent``.

        ``child`` is typically a rebuilt :func:`span_from_payload` tree
        (or a root finished on a pool thread) whose adopted ``span_id``
        already places it in the parent's id space.  Removes the child
        from the finished-roots ring if it landed there, so the grafted
        tree is reported exactly once.
        """
        parent.children.append(child)
        with self._lock:
            try:
                self._finished.remove(child)
            except ValueError:
                pass

    def reset_worker(self) -> None:
        """Reinitialize for a forked worker process.

        A fork copies the parent's thread-local span stack, finished
        ring, and — worst of all — possibly a *held* lock.  Workers call
        this (via ``reset_worker_runtime``) before doing any traced
        work, so their spans never alias the parent's.
        """
        self._local = threading.local()
        self._enabled = False
        self._lock = threading.Lock()
        self._finished = deque(maxlen=self._finished.maxlen)
        self._trace_seq = 0
