"""Machine-readable exporters: JSON documents, JSONL streams, the
Prometheus text exposition, the Chrome trace-event export, and the
human-readable span-tree rendering behind ``repro trace``.

Everything written here carries a ``schema`` tag (``trace/v2``,
``metrics-snapshot/v2``, ``timeline/v1``, ``bench-result/v1``,
``bench-observability/v1``) so downstream tooling — and the validators
in :mod:`repro.obs.schema` — can tell documents apart without guessing.
The trace and snapshot builders assemble through
:class:`~repro.obs.schema.BenchDocument` with a
:class:`~repro.obs.context.RunContext` block, the same envelope every
bench document uses.  Numpy scalars are coerced to plain Python numbers
on the way out, so experiment rows can be dumped as-is.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from typing import Any

from .metrics import MetricsRegistry
from .trace import Span, phase_counts

__all__ = [
    "jsonable",
    "write_json",
    "append_jsonl",
    "read_json",
    "snapshot_document",
    "trace_document",
    "chrome_trace_document",
    "render_prometheus",
    "render_span_tree",
]


def jsonable(obj: Any) -> Any:
    """Recursively coerce ``obj`` into plain JSON-ready Python values.

    Handles numpy scalars/arrays (via their ``item``/``tolist`` duck
    type), sets/tuples (to lists), and non-finite floats (to strings,
    since JSON has no ``inf``/``nan``).
    """
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):  # numpy scalar
        return jsonable(obj.item())
    if hasattr(obj, "tolist"):  # numpy array
        return jsonable(obj.tolist())
    return str(obj)


def write_json(path: str | pathlib.Path, document: dict) -> pathlib.Path:
    """Write one JSON document (pretty-printed, trailing newline)."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(jsonable(document), indent=2, sort_keys=False) + "\n")
    return p


def append_jsonl(path: str | pathlib.Path, record: dict) -> pathlib.Path:
    """Append one compact JSON record to a JSONL stream."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a") as fh:
        fh.write(json.dumps(jsonable(record), separators=(",", ":")) + "\n")
    return p


def read_json(path: str | pathlib.Path) -> dict:
    """Load one JSON document."""
    return json.loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# Document builders
# ----------------------------------------------------------------------
def snapshot_document(
    registry: MetricsRegistry,
    *,
    name: str = "metrics_snapshot",
    title: str = "Metrics registry snapshot",
    **context: Any,
) -> dict:
    """The ``metrics-snapshot/v2`` document for a registry.

    Free-form ``context`` keys (instance family, n, ...) land in the
    standard ``RunContext`` block under ``bench="metrics"``.
    """
    from .context import RunContext
    from .schema import BenchDocument

    snap = registry.snapshot()
    return BenchDocument.build(
        "metrics",
        name=name,
        title=title,
        counters=snap["counters"],
        gauges=snap["gauges"],
        histograms=snap["histograms"],
        context=RunContext(bench="metrics", config=context),
    ).body


def trace_document(
    root: Span,
    *,
    name: str = "trace",
    title: str = "Span trace: per-phase resource attribution",
    **context: Any,
) -> dict:
    """The ``trace/v2`` document for one finished trace tree.

    ``totals`` holds the inclusive event totals and the per-phase
    (exclusive) breakdowns for every counted key — the machine-readable
    form of the partition property ``sum(per-phase) == total``.
    """
    from .context import RunContext
    from .schema import BenchDocument

    keys: set[str] = set()
    for span, _depth in root.walk():
        keys.update(span.counts)
    return BenchDocument.build(
        "trace",
        name=name,
        title=title,
        trace_id=root.trace_id,
        root=root.to_dict(),
        totals={
            key: {
                "total": root.total_count(key),
                "by_phase": phase_counts(root, key),
            }
            for key in sorted(keys)
        },
        context=RunContext(bench="trace", config=context),
    ).body


def chrome_trace_document(root: Span) -> dict:
    """One trace tree as Chrome trace-event JSON (Perfetto-loadable).

    Every span becomes one complete (``ph="X"``) event with its *real*
    duration in microseconds.  Absolute placement is synthesized — the
    first child starts at its parent's start and each sibling starts
    where the previous one ended — because deserialized shard subtrees
    carry frozen durations only; their perf-counter timestamps belong
    to another process and mean nothing here.  Layout is therefore
    sequential, durations and nesting are exact.
    """
    events: list[dict] = []

    def emit(span: Span, start_us: float) -> None:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": {
                    "span_id": span.span_id,
                    **{k: span.counts[k] for k in sorted(span.counts)},
                },
            }
        )
        cursor = start_us
        for child in span.children:
            emit(child, cursor)
            cursor += child.duration * 1e6

    emit(root, 0.0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": root.trace_id},
    }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_PROM_SANITIZE.sub('_', name)}"


def _prom_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry, *, prefix: str = "repro") -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Counters get the ``_total`` suffix, gauges render as-is, and each
    streaming histogram renders as a *summary* (its stored state is
    quantile estimates plus exact sum/count, which is exactly a
    summary's shape).  Accepts a :class:`MetricsRegistry` or an
    already-taken snapshot dict.
    """
    snap = registry.snapshot() if hasattr(registry, "snapshot") else registry
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} Counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(int(value))}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# HELP {metric} Gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# HELP {metric} Histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for stat, quantile in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            if stat in hist:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_prom_value(hist[stat])}'
                )
        lines.append(f"{metric}_sum {_prom_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_prom_value(int(hist.get('count', 0)))}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def render_span_tree(
    root: Span,
    *,
    keys: tuple[str, ...] = ("queries", "samples", "sample_blocks"),
) -> str:
    """Pretty-print a trace tree, one span per line.

    Each line shows the span's wall-clock and, for each counted key,
    ``own`` events (attributed to that span exclusively) and ``tot``
    events (its whole subtree) when they differ.
    """
    lines: list[str] = []
    for span, depth in root.walk():
        parts = [f"{'  ' * depth}{span.name}", f"{span.duration * 1e3:9.3f} ms"]
        for key in keys:
            own, tot = span.own_count(key), span.total_count(key)
            if tot == 0:
                continue
            if own == tot:
                parts.append(f"{key}={own}")
            else:
                parts.append(f"{key}={own} (subtree {tot})")
        lines.append("  ".join(parts))
    return "\n".join(lines)
