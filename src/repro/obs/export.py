"""Machine-readable exporters: JSON documents, JSONL streams, and the
human-readable span-tree rendering behind ``repro trace``.

Everything written here carries a ``schema`` tag (``trace/v1``,
``metrics-snapshot/v1``, ``bench-result/v1``, ``bench-observability/v1``)
so downstream tooling — and the validators in :mod:`repro.obs.schema` —
can tell documents apart without guessing.  Numpy scalars are coerced to
plain Python numbers on the way out, so experiment rows can be dumped
as-is.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any

from .metrics import MetricsRegistry
from .trace import TRACE_SCHEMA, Span, phase_counts

__all__ = [
    "jsonable",
    "write_json",
    "append_jsonl",
    "read_json",
    "snapshot_document",
    "trace_document",
    "render_span_tree",
]


def jsonable(obj: Any) -> Any:
    """Recursively coerce ``obj`` into plain JSON-ready Python values.

    Handles numpy scalars/arrays (via their ``item``/``tolist`` duck
    type), sets/tuples (to lists), and non-finite floats (to strings,
    since JSON has no ``inf``/``nan``).
    """
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):  # numpy scalar
        return jsonable(obj.item())
    if hasattr(obj, "tolist"):  # numpy array
        return jsonable(obj.tolist())
    return str(obj)


def write_json(path: str | pathlib.Path, document: dict) -> pathlib.Path:
    """Write one JSON document (pretty-printed, trailing newline)."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(jsonable(document), indent=2, sort_keys=False) + "\n")
    return p


def append_jsonl(path: str | pathlib.Path, record: dict) -> pathlib.Path:
    """Append one compact JSON record to a JSONL stream."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a") as fh:
        fh.write(json.dumps(jsonable(record), separators=(",", ":")) + "\n")
    return p


def read_json(path: str | pathlib.Path) -> dict:
    """Load one JSON document."""
    return json.loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
# Document builders
# ----------------------------------------------------------------------
def snapshot_document(registry: MetricsRegistry, **context: Any) -> dict:
    """The ``metrics-snapshot/v1`` document for a registry, with free-
    form ``context`` keys (instance family, n, ...) merged in."""
    doc = registry.snapshot()
    if context:
        doc["context"] = jsonable(context)
    return doc


def trace_document(root: Span, **context: Any) -> dict:
    """The ``trace/v1`` document for one finished trace tree.

    ``totals`` holds the inclusive event totals and the per-phase
    (exclusive) breakdowns for every counted key — the machine-readable
    form of the partition property ``sum(per-phase) == total``.
    """
    keys: set[str] = set()
    for span, _depth in root.walk():
        keys.update(span.counts)
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": root.trace_id,
        "root": root.to_dict(),
        "totals": {
            key: {
                "total": root.total_count(key),
                "by_phase": phase_counts(root, key),
            }
            for key in sorted(keys)
        },
        "context": jsonable(context),
    }


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------
def render_span_tree(root: Span, *, keys: tuple[str, ...] = ("queries", "samples")) -> str:
    """Pretty-print a trace tree, one span per line.

    Each line shows the span's wall-clock and, for each counted key,
    ``own`` events (attributed to that span exclusively) and ``tot``
    events (its whole subtree) when they differ.
    """
    lines: list[str] = []
    for span, depth in root.walk():
        parts = [f"{'  ' * depth}{span.name}", f"{span.duration * 1e3:9.3f} ms"]
        for key in keys:
            own, tot = span.own_count(key), span.total_count(key)
            if tot == 0:
                continue
            if own == tot:
                parts.append(f"{key}={own}")
            else:
                parts.append(f"{key}={own} (subtree {tot})")
        lines.append("  ".join(parts))
    return "\n".join(lines)
