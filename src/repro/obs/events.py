"""Flight recorder: a bounded, structured event log for rare moments.

Metrics answer "how many"; traces answer "where did the time/probes
go"; the flight recorder answers "**what happened, in what order**" —
faults fired, probes retried, shards requeued or hedged, answers
degraded, cache entries hit or evicted.  Events are rare (they mark
exceptional control flow, not per-probe work), so a bounded ring with a
drop counter is the right shape: the recorder can never grow without
bound under a fault storm, and it is honest about what it shed.

Every event is stamped with the active ``(trace_id, span_id)`` at
record time, so a chaos run's timeline can be joined against its trace
tree — the ``repro flightrec`` CLI renders exactly that.  Events carry
**no wall-clock timestamps**: ordering is the monotonically increasing
``seq``, which keeps the exported ``events/v1`` document byte-identical
across reruns of a seeded scenario (the same determinism contract as
``chaos-report/v1``).

Worker processes run their own recorder (reset at chunk start);
finished events ship home inside the chunk payload and are folded into
the parent's recorder via :meth:`FlightRecorder.ingest`, which
re-stamps ``seq`` so the merged log has one total order.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from .export import jsonable

__all__ = [
    "EVENTS_SCHEMA",
    "Event",
    "FlightRecorder",
    "events_document",
    "render_timeline",
]

EVENTS_SCHEMA = "events/v1"


@dataclass(frozen=True)
class Event:
    """One recorded moment: a kind, a trace position, and attributes."""

    seq: int
    kind: str
    trace_id: str | None = None
    span_id: str | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (schema ``events/v1`` entry)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "attrs": jsonable(dict(self.attrs)),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
            attrs=dict(data.get("attrs", {})),
        )


class FlightRecorder:
    """Bounded ring of :class:`Event` with an honest drop counter.

    ``capacity`` bounds memory under fault storms; once full, the
    oldest events fall off and ``dropped`` counts them.  ``seq`` is
    assigned under the lock, so events from concurrent shard threads
    interleave into one total order.

    With a **spill** configured (:meth:`set_spill` or the ``spill_path``
    constructor argument), each event evicted from the ring is appended
    to a JSONL file before it is forgotten — long chaos runs keep a
    complete timeline on disk while memory stays bounded.  ``dropped``
    keeps counting ring evictions regardless (it reports what the
    *in-memory* view shed); ``spilled`` counts how many of those made it
    to disk.  The spill file is truncated when (re)configured and on
    :meth:`clear`, so a cleared recorder still replays a seeded scenario
    byte-identically, spill file included.
    """

    def __init__(self, capacity: int = 1024, *, spill_path=None) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._spilled = 0
        self._spill_path: str | None = None
        self._spill_fh = None
        if spill_path is not None:
            self.set_spill(spill_path)

    # ------------------------------------------------------------------
    def set_spill(self, path) -> None:
        """(Re)configure the eviction spill file; ``None`` disables.

        The file is opened truncated: a spill is a per-run artifact,
        and a stale tail from a previous run would corrupt the
        deterministic-replay contract."""
        with self._lock:
            if self._spill_fh is not None:
                self._spill_fh.close()
                self._spill_fh = None
            self._spill_path = None
            self._spilled = 0
            if path is not None:
                self._spill_path = str(path)
                self._spill_fh = open(self._spill_path, "w", encoding="utf-8")

    def _evict_locked(self) -> None:
        """Ring is full: count (and optionally spill) the oldest event.

        Caller holds the lock; the subsequent ``append`` performs the
        actual eviction via the deque's ``maxlen``."""
        self._dropped += 1
        if self._spill_fh is not None:
            victim = self._ring[0]
            self._spill_fh.write(
                json.dumps(victim.to_dict(), sort_keys=True) + "\n"
            )
            self._spill_fh.flush()
            self._spilled += 1

    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        *,
        trace_id: str | None = None,
        span_id: str | None = None,
        **attrs,
    ) -> Event:
        """Append one event and return it."""
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=kind,
                trace_id=trace_id,
                span_id=span_id,
                attrs=attrs,
            )
            if len(self._ring) == self._capacity:
                self._evict_locked()
            self._ring.append(event)
            return event

    def ingest(self, events: Iterable[Event | dict]) -> int:
        """Fold another recorder's finished events into this one.

        Each event is re-stamped with this recorder's next ``seq`` (the
        source's relative order is preserved), so the merged log has one
        total order.  Returns the number of events ingested.
        """
        n = 0
        with self._lock:
            for item in events:
                event = Event.from_dict(item) if isinstance(item, dict) else item
                self._seq += 1
                restamped = Event(
                    seq=self._seq,
                    kind=event.kind,
                    trace_id=event.trace_id,
                    span_id=event.span_id,
                    attrs=dict(event.attrs),
                )
                if len(self._ring) == self._capacity:
                    self._evict_locked()
                self._ring.append(restamped)
                n += 1
        return n

    # ------------------------------------------------------------------
    def events(self) -> list[Event]:
        """All retained events, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Forget everything, including ``seq``, the drop counter, and
        the spill file's contents — a cleared recorder replays a seeded
        scenario identically, spill included."""
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self._dropped = 0
            self._spilled = 0
            if self._spill_fh is not None:
                self._spill_fh.close()
                self._spill_fh = open(self._spill_path, "w", encoding="utf-8")

    @property
    def capacity(self) -> int:
        """Maximum retained events."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events shed because the ring was full."""
        with self._lock:
            return self._dropped

    @property
    def spilled(self) -> int:
        """Evicted events appended to the spill file."""
        with self._lock:
            return self._spilled

    @property
    def spill_path(self) -> str | None:
        """The configured spill file (``None`` when spilling is off)."""
        with self._lock:
            return self._spill_path

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def events_document(recorder: FlightRecorder, **context) -> dict:
    """The recorder's ``events/v1`` document.

    ``context`` keys (seed, rates, scenario labels, ...) are embedded so
    a timeline is self-describing; like ``chaos-report/v1``, the
    document carries no timing fields and is byte-identical across
    reruns of the same seeded scenario.
    """
    events = recorder.events()
    return {
        "schema": EVENTS_SCHEMA,
        "capacity": recorder.capacity,
        "dropped": recorder.dropped,
        "count": len(events),
        "events": [e.to_dict() for e in events],
        "context": jsonable(context),
    }


def render_timeline(document: dict) -> str:
    """Human-readable causal timeline of an ``events/v1`` document."""
    lines: list[str] = []
    context = document.get("context") or {}
    if context:
        ctx = ", ".join(f"{k}={context[k]}" for k in sorted(context))
        lines.append(f"context: {ctx}")
    dropped = document.get("dropped", 0)
    lines.append(
        f"{document.get('count', 0)} events "
        f"(capacity {document.get('capacity', '?')}, dropped {dropped})"
    )
    for entry in document.get("events", ()):
        where = ""
        if entry.get("trace_id"):
            where = f" [{entry['trace_id']}/{entry.get('span_id') or '?'}]"
        attrs = entry.get("attrs") or {}
        detail = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        lines.append(
            f"  #{entry['seq']:<4} {entry['kind']:<26}{where}"
            + (f" {detail}" if detail else "")
        )
    return "\n".join(lines)
