"""Perf-regression sentinel: compare two ``bench-result/v1`` documents.

Benchmarks are noisy; exact counts are not.  The differ therefore
splits metrics into three families with different comparison rules:

* **timing metrics** (lower is better — ``wall_clock_s``,
  ``latency_ms``): a regression needs *both* a relative excursion past
  ``threshold`` (default 1.75x) *and* an absolute excursion past
  ``abs_floor_s`` — sub-millisecond rows jitter by multiples without
  meaning anything.
* **rate metrics** (higher is better — ``qps``, ``speedup``,
  ``speedup_vs_per_query``): symmetric rule, candidate below
  ``baseline / threshold`` regresses.
* **exact counts** (``queries``, ``samples``, ``blocks``,
  ``pipelines_run``, ``cache_hits``): the repo's determinism contract
  says these are *bit-identical* across runs of the same seed, so any
  mismatch is flagged as ``drift`` — not slower, but a reproducibility
  break, which is worse.

Load rows (``bench-load/v1``) ride the same machinery: their tail
latencies (``p50/p95/p99_queueing_ms``, ``p50/p95/p99_latency_ms``)
join the timing family (relative threshold plus the ms-scaled absolute
floor), ``achieved_qps`` joins the rate family, and ``availability``
is both a rate metric and dimensionless — a load shed or a degradation
cliff is comparable across hardware, so it survives ``relative_only``.

Rows carrying a ``timeline/v1`` fragment contribute trajectory
sentinels: ``timeline_ticks``, ``timeline_max_brownout_level``, and
``timeline_max_queue_depth`` are exact counts (a changed staircase on
the same seeds is a reproducibility drift), while the per-level
``timeline_time_at_level_{L}_ratio`` fractions are dimensionless and
ride the rate family — so a governor that suddenly spends its run two
rungs deeper trips the sentinel even across hardware.

Gauges are compared too, not ignored: names ending in
:data:`EXACT_GAUGE_SUFFIXES` (``.size``, ``.level``, ``.depth``, ...)
are deterministic state and drift on any mismatch; other gauges are
measurements and only flag past the relative ``threshold``.  Document-
level ``gauges`` maps (``metrics-snapshot/v2``) are diffed the same
way.

Rows are matched by ``(mode, n, family, rate, clock)`` — the two extra
coordinates are ``None`` for classic bench rows, so old documents keep
their keys.  In ``relative_only`` mode (fresh quick run vs. a committed
document recorded on other hardware) absolute timings are meaningless,
so only dimensionless relative metrics are compared.

The output is a ``bench-diff/v1`` document; ``ok`` is False iff any
regression or drift was found — ``repro obs-diff`` turns that into its
exit code, which is what makes this a CI tripwire.
"""

from __future__ import annotations

__all__ = [
    "BENCH_DIFF_SCHEMA",
    "LOWER_IS_BETTER",
    "HIGHER_IS_BETTER",
    "EXACT_COUNTS",
    "RELATIVE_METRICS",
    "TIMELINE_EXACT",
    "EXACT_GAUGE_SUFFIXES",
    "diff_documents",
]

BENCH_DIFF_SCHEMA = "bench-diff/v1"

#: Timing metrics: candidate bigger is worse.  ``*_ms`` metrics get the
#: absolute floor scaled to milliseconds.
LOWER_IS_BETTER = (
    "wall_clock_s",
    "latency_ms",
    "p50_queueing_ms",
    "p95_queueing_ms",
    "p99_queueing_ms",
    "p50_latency_ms",
    "p95_latency_ms",
    "p99_latency_ms",
)

#: Rate metrics: candidate smaller is worse.
HIGHER_IS_BETTER = (
    "qps",
    "speedup",
    "speedup_vs_per_query",
    "achieved_qps",
    "availability",
    "ratio",
)

#: Deterministic counts: any mismatch is a reproducibility drift.
EXACT_COUNTS = ("queries", "samples", "blocks", "pipelines_run", "cache_hits")

#: Dimensionless metrics still comparable across different hardware.
RELATIVE_METRICS = ("speedup", "speedup_vs_per_query", "availability", "ratio")

#: Timeline trajectory counts: deterministic on the virtual clock, so
#: any mismatch is a drift (skipped under ``relative_only``).
TIMELINE_EXACT = (
    "timeline_ticks",
    "timeline_max_brownout_level",
    "timeline_max_queue_depth",
)

#: Gauge name suffixes holding deterministic state rather than a
#: measurement; these drift on any mismatch instead of thresholding.
EXACT_GAUGE_SUFFIXES = (".size", ".level", ".depth", ".state", ".inflight")


def _timeline_metrics(row: dict) -> dict:
    """Flatten a row's ``timeline/v1`` fragment into sentinel metrics."""
    fragment = row.get("timeline")
    if not isinstance(fragment, dict):
        return {}
    summary = fragment.get("summary") or {}
    out = {
        "timeline_ticks": int(summary.get("ticks", 0)),
        "timeline_max_brownout_level": int(summary.get("max_brownout_level", 0)),
        "timeline_max_queue_depth": int(summary.get("max_queue_depth", 0)),
    }
    for level, fraction in (summary.get("time_at_level") or {}).items():
        out[f"timeline_time_at_level_{level}_ratio"] = float(fraction)
    return out


def _gauge_findings(
    label: str,
    base_gauges: dict,
    cand_gauges: dict,
    *,
    threshold: float,
    relative_only: bool,
) -> list[dict]:
    """Compare two gauge maps name-by-name.

    Exact-family gauges (state the determinism contract covers) drift
    on any mismatch; measurement gauges flag only past ``threshold`` in
    either direction — a gauge has no universal better-direction, so an
    excursion is reported as drift, not regression.
    """
    findings: list[dict] = []
    for name in sorted(set(base_gauges) & set(cand_gauges)):
        b, c = float(base_gauges[name]), float(cand_gauges[name])
        if name.endswith(EXACT_GAUGE_SUFFIXES):
            if relative_only:
                continue
            status = "ok" if b == c else "drift"
            note = "" if b == c else "deterministic gauge changed"
        elif b > 0 and (c > b * threshold or c < b / threshold):
            status, note = "drift", f"gauge moved {c / b:.2f}x"
        else:
            status, note = "ok", ""
        findings.append(
            {
                "row": label,
                "metric": f"gauge:{name}",
                "status": status,
                "baseline": b,
                "candidate": c,
                "note": note,
            }
        )
    return findings


def _row_key(row: dict) -> tuple:
    return (
        row.get("mode"),
        row.get("n"),
        row.get("family"),
        # chaos-report rows are keyed by their fault rate, not an
        # offered-load rate; fold it into the same slot so a ladder of
        # chaos rows never collapses onto one diff key.
        row.get("rate", row.get("probe_failure_rate")),
        row.get("clock"),
    )


def _key_label(key: tuple) -> str:
    mode, n, family, rate, clock = key
    parts = [str(mode)]
    if n is not None:
        parts.append(f"n={n}")
    if family is not None:
        parts.append(str(family))
    if rate is not None:
        parts.append(f"rate={rate:g}")
    if clock is not None:
        parts.append(str(clock))
    return " ".join(parts)


def _compare_row(
    key: tuple,
    base: dict,
    cand: dict,
    *,
    threshold: float,
    abs_floor_s: float,
    relative_only: bool,
) -> list[dict]:
    findings: list[dict] = []
    label = _key_label(key)

    def finding(metric: str, status: str, b, c, note: str) -> dict:
        return {
            "row": label,
            "metric": metric,
            "status": status,
            "baseline": b,
            "candidate": c,
            "note": note,
        }

    timing = () if relative_only else LOWER_IS_BETTER
    rates = RELATIVE_METRICS if relative_only else HIGHER_IS_BETTER
    counts = () if relative_only else EXACT_COUNTS

    for metric in timing:
        if metric not in base or metric not in cand:
            continue
        b, c = float(base[metric]), float(cand[metric])
        floor = abs_floor_s * (1000.0 if metric.endswith("_ms") else 1.0)
        if b > 0 and c > b * threshold and (c - b) > floor:
            findings.append(
                finding(metric, "regression", b, c, f"{c / b:.2f}x slower")
            )
        elif b > 0 and c < b / threshold and (b - c) > floor:
            findings.append(
                finding(metric, "improvement", b, c, f"{b / c:.2f}x faster")
            )
        else:
            findings.append(finding(metric, "ok", b, c, ""))

    for metric in rates:
        if metric not in base or metric not in cand:
            continue
        b, c = float(base[metric]), float(cand[metric])
        if b > 0 and c < b / threshold:
            findings.append(
                finding(metric, "regression", b, c, f"{b / c:.2f}x lower")
            )
        elif c > 0 and b > 0 and c > b * threshold:
            findings.append(
                finding(metric, "improvement", b, c, f"{c / b:.2f}x higher")
            )
        else:
            findings.append(finding(metric, "ok", b, c, ""))

    for metric in counts:
        if metric not in base or metric not in cand:
            continue
        b, c = int(base[metric]), int(cand[metric])
        if b != c:
            findings.append(
                finding(metric, "drift", b, c, "deterministic count changed")
            )
        else:
            findings.append(finding(metric, "ok", b, c, ""))

    # Timeline trajectory sentinels (rows carrying a timeline fragment).
    base_tl = _timeline_metrics(base)
    cand_tl = _timeline_metrics(cand)
    if base_tl and cand_tl:
        if not relative_only:
            for metric in TIMELINE_EXACT:
                b, c = int(base_tl[metric]), int(cand_tl[metric])
                if b != c:
                    findings.append(
                        finding(metric, "drift", b, c, "trajectory changed")
                    )
                else:
                    findings.append(finding(metric, "ok", b, c, ""))
        for metric in sorted(set(base_tl) & set(cand_tl)):
            # Dimensionless time-at-level fractions: rate-family rules,
            # comparable across hardware (survive relative_only).
            if not metric.endswith("_ratio"):
                continue
            b, c = float(base_tl[metric]), float(cand_tl[metric])
            if b > 0 and c < b / threshold:
                findings.append(
                    finding(metric, "regression", b, c, f"{b / c:.2f}x lower")
                )
            elif c > 0 and b > 0 and c > b * threshold:
                findings.append(
                    finding(metric, "improvement", b, c, f"{c / b:.2f}x higher")
                )
            else:
                findings.append(finding(metric, "ok", b, c, ""))

    # Row-level gauge maps (timeline rows and future per-row gauges).
    if isinstance(base.get("gauges"), dict) and isinstance(cand.get("gauges"), dict):
        findings.extend(
            _gauge_findings(
                label,
                base["gauges"],
                cand["gauges"],
                threshold=threshold,
                relative_only=relative_only,
            )
        )

    return findings


def diff_documents(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float = 1.75,
    abs_floor_s: float = 0.002,
    relative_only: bool = False,
) -> dict:
    """Compare two ``bench-result/v1`` documents; return ``bench-diff/v1``.

    ``threshold`` is the relative noise allowance (1.75 ⇒ a timing must
    be >1.75x the baseline to regress); ``abs_floor_s`` additionally
    requires the excursion to exceed an absolute floor (scaled to ms
    for ``latency_ms``).  ``relative_only`` restricts the comparison to
    dimensionless metrics for cross-hardware diffs.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    base_rows = {_row_key(r): r for r in baseline.get("rows", ())}
    cand_rows = {_row_key(r): r for r in candidate.get("rows", ())}

    findings: list[dict] = []
    rows_compared = 0
    rows_missing: list[str] = []
    for key, base in base_rows.items():
        cand = cand_rows.get(key)
        if cand is None:
            rows_missing.append(_key_label(key))
            continue
        rows_compared += 1
        findings.extend(
            _compare_row(
                key,
                base,
                cand,
                threshold=threshold,
                abs_floor_s=abs_floor_s,
                relative_only=relative_only,
            )
        )
    for key in cand_rows:
        if key not in base_rows:
            rows_missing.append(_key_label(key) + " (candidate only)")

    # Document-level gauge maps (metrics-snapshot/v2 documents).
    if isinstance(baseline.get("gauges"), dict) and isinstance(
        candidate.get("gauges"), dict
    ):
        findings.extend(
            _gauge_findings(
                "gauges",
                baseline["gauges"],
                candidate["gauges"],
                threshold=threshold,
                relative_only=relative_only,
            )
        )

    regressions = sum(1 for f in findings if f["status"] == "regression")
    improvements = sum(1 for f in findings if f["status"] == "improvement")
    drifts = sum(1 for f in findings if f["status"] == "drift")
    return {
        "schema": BENCH_DIFF_SCHEMA,
        "baseline": {"name": baseline.get("name", "")},
        "candidate": {"name": candidate.get("name", "")},
        "threshold": threshold,
        "abs_floor_s": abs_floor_s,
        "relative_only": relative_only,
        "rows_compared": rows_compared,
        "rows_missing": sorted(rows_missing),
        "findings": findings,
        "regressions": regressions,
        "improvements": improvements,
        "drifts": drifts,
        "ok": regressions == 0 and drifts == 0,
    }
