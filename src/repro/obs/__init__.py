"""Observability substrate: metrics registry, span tracer, exporters.

Every theorem in the paper is a statement about a measurable resource
(query complexity, sample complexity); this package is how the repo
*observes* those resources at runtime instead of re-deriving them
post-hoc.  Three layers:

* :mod:`repro.obs.metrics` — counters, gauges, and streaming
  histograms (p50/p90/p99 without storing samples);
* :mod:`repro.obs.trace` — span-based tracing with thread-local
  nesting, a no-op disabled path, and cross-process trace-context
  propagation (adopt / serialize / graft), so a sharded batch yields
  one unified tree;
* :mod:`repro.obs.events` — the flight recorder: a bounded structured
  event log for fault/retry/hedge/degradation incidents;
* :mod:`repro.obs.timeline` — deterministic time-series sampling: the
  ``timeline/v1`` plane recording counter deltas and governor state on
  a tick grid (byte-identical on the virtual clock, live on wall);
* :mod:`repro.obs.diff` — the perf-regression sentinel comparing two
  ``bench-result/v1`` documents;
* :mod:`repro.obs.export` / :mod:`repro.obs.schema` — machine-readable
  JSON/JSONL documents and their validators.

The process-global instances live in :mod:`repro.obs.runtime`; the
``repro trace`` and ``repro metrics`` CLI subcommands are the
interactive front ends.
"""

from .diff import BENCH_DIFF_SCHEMA, diff_documents
from .events import EVENTS_SCHEMA, Event, FlightRecorder, events_document, render_timeline
from .export import (
    append_jsonl,
    chrome_trace_document,
    jsonable,
    read_json,
    render_prometheus,
    render_span_tree,
    snapshot_document,
    trace_document,
    write_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    RECORDER,
    REGISTRY,
    TRACER,
    activate_timeline,
    deactivate_timeline,
    record_event,
    record_oracle_queries,
    record_samples,
    reset_worker_runtime,
    snapshot,
    span,
    timeline_state,
)
from .timeline import TIMELINE_SCHEMA, TimelineSampler, merge_timeline_states
from .trace import Span, Tracer, phase_counts, span_from_payload, span_to_payload

# NOTE: repro.obs.schema is intentionally not imported here so that
# ``python -m repro.obs.schema`` (the CI smoke validator) runs without a
# double-import warning; import it explicitly where needed.

__all__ = [
    "BENCH_DIFF_SCHEMA",
    "Counter",
    "EVENTS_SCHEMA",
    "Event",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "phase_counts",
    "span_from_payload",
    "span_to_payload",
    "RECORDER",
    "REGISTRY",
    "TRACER",
    "span",
    "record_event",
    "record_oracle_queries",
    "record_samples",
    "reset_worker_runtime",
    "snapshot",
    "diff_documents",
    "events_document",
    "render_timeline",
    "jsonable",
    "write_json",
    "append_jsonl",
    "read_json",
    "snapshot_document",
    "trace_document",
    "chrome_trace_document",
    "render_prometheus",
    "render_span_tree",
    "TIMELINE_SCHEMA",
    "TimelineSampler",
    "merge_timeline_states",
    "activate_timeline",
    "deactivate_timeline",
    "timeline_state",
]
