"""Observability substrate: metrics registry, span tracer, exporters.

Every theorem in the paper is a statement about a measurable resource
(query complexity, sample complexity); this package is how the repo
*observes* those resources at runtime instead of re-deriving them
post-hoc.  Three layers:

* :mod:`repro.obs.metrics` — counters, gauges, and streaming
  histograms (p50/p90/p99 without storing samples);
* :mod:`repro.obs.trace` — span-based tracing with thread-local
  nesting and a no-op disabled path, so per-phase attribution costs
  nothing until it is asked for;
* :mod:`repro.obs.export` / :mod:`repro.obs.schema` — machine-readable
  JSON/JSONL documents and their validators.

The process-global instances live in :mod:`repro.obs.runtime`; the
``repro trace`` and ``repro metrics`` CLI subcommands are the
interactive front ends.
"""

from .export import (
    append_jsonl,
    jsonable,
    read_json,
    render_span_tree,
    snapshot_document,
    trace_document,
    write_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import REGISTRY, TRACER, record_oracle_queries, record_samples, span, snapshot
from .trace import Span, Tracer, phase_counts

# NOTE: repro.obs.schema is intentionally not imported here so that
# ``python -m repro.obs.schema`` (the CI smoke validator) runs without a
# double-import warning; import it explicitly where needed.

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "phase_counts",
    "REGISTRY",
    "TRACER",
    "span",
    "record_oracle_queries",
    "record_samples",
    "snapshot",
    "jsonable",
    "write_json",
    "append_jsonl",
    "read_json",
    "snapshot_document",
    "trace_document",
    "render_span_tree",
]
