"""Process-global observability runtime: one registry, one tracer.

Instrumented modules (:mod:`repro.access.oracle`,
:mod:`repro.access.weighted_sampler`, :mod:`repro.core.lca_kp`, ...)
import this module and call the helpers below; nothing else in the
package should hold its own global metric state.

Two cost tiers, matching the ISSUE's overhead budget:

* **always on** — the registry counters (``oracle.queries``,
  ``sampler.samples``) and the per-batch size histogram.  An event is
  an integer add; the histogram sees one observation per *batch*, not
  per sample.
* **opt-in** — span attribution via :data:`TRACER`, active only after
  ``TRACER.enable()``.  Disabled, ``span()`` returns a shared no-op
  and ``record_*`` pays a single boolean check beyond the counter add.
"""

from __future__ import annotations

from .events import FlightRecorder
from .metrics import MetricsRegistry
from .timeline import TimelineSampler
from .trace import Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "RECORDER",
    "TIMELINE",
    "activate_timeline",
    "deactivate_timeline",
    "timeline_state",
    "span",
    "record_oracle_queries",
    "record_samples",
    "record_sample_block",
    "record_fault",
    "record_corruption_detected",
    "record_probe_retries",
    "record_degraded",
    "record_shard_retries",
    "record_hedges",
    "record_shm",
    "record_event",
    "reset_worker_runtime",
    "snapshot",
]

#: The process-global metrics registry.
REGISTRY = MetricsRegistry()

#: The process-global tracer (disabled by default).
TRACER = Tracer()

#: The process-global flight recorder (always on; events are rare).
RECORDER = FlightRecorder()

#: The process-global timeline sampler (``None`` unless activated).
#: Forked shard workers inherit the activated sampler through this
#: module global — that inheritance *is* the capture opt-in signal —
#: and swap in a ``fresh()`` copy during :func:`reset_worker_runtime`
#: so shard-local ticks never alias the parent's ring.  Spawn-based
#: pools start with ``None`` and simply don't capture.
TIMELINE: TimelineSampler | None = None


def activate_timeline(sampler: TimelineSampler | None) -> TimelineSampler | None:
    """Install ``sampler`` as the process-global timeline (or clear it
    with ``None``).  Returns the previously active sampler so callers
    can restore it."""
    global TIMELINE
    previous = TIMELINE
    TIMELINE = sampler
    return previous


def deactivate_timeline() -> None:
    """Clear the process-global timeline sampler."""
    activate_timeline(None)


def timeline_state() -> dict | None:
    """Mergeable state of the active timeline, or ``None`` when off.

    Takes one final registry-only capture first so short-lived shard
    workers ship their counter deltas home even if no grid tick fired
    during their lifetime.
    """
    if TIMELINE is None:
        return None
    TIMELINE.capture()
    return TIMELINE.state()

_ORACLE_QUERIES = REGISTRY.counter("oracle.queries")
_SAMPLER_SAMPLES = REGISTRY.counter("sampler.samples")
_SAMPLE_BATCH = REGISTRY.histogram("sampler.batch_size")
_SAMPLER_BLOCKS = REGISTRY.counter("sampler.blocks")
_FAULTS_TOTAL = REGISTRY.counter("faults.injected")
_FAULT_KINDS = {
    kind: REGISTRY.counter(f"faults.{kind}")
    for kind in ("probe_failures", "timeouts", "corruptions", "latency_spikes")
}
_PROBE_RETRIES = REGISTRY.counter("serve.probe_retries")
_DEGRADED = REGISTRY.counter("serve.degraded")
_SHARD_RETRIES = REGISTRY.counter("serve.shard_retries")
_HEDGES = REGISTRY.counter("serve.hedges")


def span(name: str):
    """Open a phase span on the global tracer (no-op when disabled)."""
    return TRACER.span(name)


def record_oracle_queries(n: int = 1) -> None:
    """One or more charged :class:`~repro.access.QueryOracle` queries."""
    _ORACLE_QUERIES.inc(n)
    if TRACER._enabled:
        TRACER.add("queries", n)


def record_samples(n: int = 1) -> None:
    """One charged batch of ``n`` weighted-sampler draws."""
    _SAMPLER_SAMPLES.inc(n)
    _SAMPLE_BATCH.observe(n)
    if TRACER._enabled:
        TRACER.add("samples", n)


def record_sample_block(n: int) -> None:
    """One charged *columnar block* of ``n`` weighted-sampler draws.

    Exactly one obs call per block: the ``sampler.samples`` total and
    the batch-size histogram advance identically to :func:`record_samples`
    (metrics totals are invariant to which path charged the draws), and
    the block itself is counted once — in ``sampler.blocks`` and, under
    the tracer, as a per-phase ``sample_blocks`` span count so
    ``repro trace`` attributes blocks as exactly as it attributes draws.
    """
    _SAMPLER_SAMPLES.inc(n)
    _SAMPLE_BATCH.observe(n)
    _SAMPLER_BLOCKS.inc(1)
    if TRACER._enabled:
        TRACER.add("samples", n)
        TRACER.add("sample_blocks", 1)


def record_fault(kind: str, n: int = 1) -> None:
    """One injected fault of ``kind`` (probe_failures/timeouts/...)."""
    _FAULTS_TOTAL.inc(n)
    counter = _FAULT_KINDS.get(kind)
    if counter is None:  # unknown kinds still count somewhere visible
        counter = REGISTRY.counter(f"faults.{kind}")
        _FAULT_KINDS[kind] = counter
    counter.inc(n)
    if TRACER._enabled:
        TRACER.add("faults", n)


def record_corruption_detected(n: int = 1) -> None:
    """``n`` corrupted probe deliveries caught by a plausibility audit.

    Detection is not injection: this counts in
    ``faults.corruptions_detected`` only, never in ``faults.injected``
    (the injector already counted the corruption when it fired).
    """
    REGISTRY.counter("faults.corruptions_detected").inc(n)


def record_probe_retries(n: int) -> None:
    """``n`` budget-charged re-probes performed by a retry policy."""
    _PROBE_RETRIES.inc(n)


def record_degraded(n: int = 1) -> None:
    """``n`` answers served off the degradation ladder."""
    _DEGRADED.inc(n)


def record_shard_retries(n: int = 1) -> None:
    """``n`` parallel shards requeued after worker death."""
    _SHARD_RETRIES.inc(n)


def record_hedges(n: int = 1) -> None:
    """``n`` hedged duplicate shard submissions fired."""
    _HEDGES.inc(n)


def record_probe_hedges(n: int = 1) -> None:
    """``n`` per-probe backup probes fired by a hedging retry policy."""
    REGISTRY.counter("faults.probe_hedges").inc(n)


def record_shm(kind: str, n: int = 1) -> None:
    """``n`` shared-memory tier lifecycle events of ``kind``.

    Kinds in use: ``segments_created``, ``segments_unlinked``,
    ``attaches``, ``detaches``, ``attach_hits`` (per-process attach
    cache), ``mmap_spills`` (POSIX shm unavailable, fell back to a
    memmapped file).  Leak detection is the invariant
    ``segments_created == segments_unlinked`` at rest; ``repro
    shm-stats`` and the lifecycle tests assert it.
    """
    REGISTRY.counter(f"shm.{kind}").inc(n)


def record_event(kind: str, **attrs) -> None:
    """Append one flight-recorder event, stamped with the active trace
    context (``(None, None)`` outside any span or with tracing off)."""
    trace_id, span_id = TRACER.current_ids()
    RECORDER.record(kind, trace_id=trace_id, span_id=span_id, **attrs)


def reset_worker_runtime() -> None:
    """Reinitialize the global runtime inside a forked worker.

    Fork copies the parent's counter values, open span stack, and
    recorded events into the child; a shard worker must start from zero
    or its shipped-home state would double-count the parent's.  Resets
    the registry *in place* (module-level cached counter objects keep
    their identity), gives the tracer fresh thread-local state and
    locks, clears the recorder, and — when the parent had a timeline
    active — replaces the inherited sampler with an empty ``fresh()``
    copy so shard-local capture starts from zero.
    """
    global TIMELINE
    REGISTRY.reset()
    TRACER.reset_worker()
    RECORDER.clear()
    if TIMELINE is not None:
        TIMELINE = TIMELINE.fresh()


def snapshot() -> dict:
    """The global registry's bare ``metrics-snapshot/v2`` tagged
    snapshot (the CLI wraps it in the BenchDocument envelope via
    :func:`repro.obs.export.snapshot_document`)."""
    return REGISTRY.snapshot()
