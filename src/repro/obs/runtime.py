"""Process-global observability runtime: one registry, one tracer.

Instrumented modules (:mod:`repro.access.oracle`,
:mod:`repro.access.weighted_sampler`, :mod:`repro.core.lca_kp`, ...)
import this module and call the helpers below; nothing else in the
package should hold its own global metric state.

Two cost tiers, matching the ISSUE's overhead budget:

* **always on** — the registry counters (``oracle.queries``,
  ``sampler.samples``) and the per-batch size histogram.  An event is
  an integer add; the histogram sees one observation per *batch*, not
  per sample.
* **opt-in** — span attribution via :data:`TRACER`, active only after
  ``TRACER.enable()``.  Disabled, ``span()`` returns a shared no-op
  and ``record_*`` pays a single boolean check beyond the counter add.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = [
    "REGISTRY",
    "TRACER",
    "span",
    "record_oracle_queries",
    "record_samples",
    "record_sample_block",
    "snapshot",
]

#: The process-global metrics registry.
REGISTRY = MetricsRegistry()

#: The process-global tracer (disabled by default).
TRACER = Tracer()

_ORACLE_QUERIES = REGISTRY.counter("oracle.queries")
_SAMPLER_SAMPLES = REGISTRY.counter("sampler.samples")
_SAMPLE_BATCH = REGISTRY.histogram("sampler.batch_size")
_SAMPLER_BLOCKS = REGISTRY.counter("sampler.blocks")


def span(name: str):
    """Open a phase span on the global tracer (no-op when disabled)."""
    return TRACER.span(name)


def record_oracle_queries(n: int = 1) -> None:
    """One or more charged :class:`~repro.access.QueryOracle` queries."""
    _ORACLE_QUERIES.inc(n)
    if TRACER._enabled:
        TRACER.add("queries", n)


def record_samples(n: int = 1) -> None:
    """One charged batch of ``n`` weighted-sampler draws."""
    _SAMPLER_SAMPLES.inc(n)
    _SAMPLE_BATCH.observe(n)
    if TRACER._enabled:
        TRACER.add("samples", n)


def record_sample_block(n: int) -> None:
    """One charged *columnar block* of ``n`` weighted-sampler draws.

    Exactly one obs call per block: the ``sampler.samples`` total and
    the batch-size histogram advance identically to :func:`record_samples`
    (metrics totals are invariant to which path charged the draws), and
    the block itself is counted once — in ``sampler.blocks`` and, under
    the tracer, as a per-phase ``sample_blocks`` span count so
    ``repro trace`` attributes blocks as exactly as it attributes draws.
    """
    _SAMPLER_SAMPLES.inc(n)
    _SAMPLE_BATCH.observe(n)
    _SAMPLER_BLOCKS.inc(1)
    if TRACER._enabled:
        TRACER.add("samples", n)
        TRACER.add("sample_blocks", 1)


def snapshot() -> dict:
    """The global registry's ``metrics-snapshot/v1`` document."""
    return REGISTRY.snapshot()
