"""Instance I/O in the classical knapsack benchmark text format.

The de-facto interchange format of the knapsack literature (Pisinger's
generator outputs and the `knapPI` benchmark sets) is a plain text
listing::

    <name>
    n <items>
    c <capacity>
    z <optimal value>        (optional)
    time <seconds>           (optional, ignored)
    1,<profit>,<weight>,<x>  (x = 1 iff in the recorded optimum, optional)
    2,<profit>,<weight>,<x>
    ...

This module reads and writes that format (plus the library's own JSON,
via :meth:`~repro.knapsack.instance.KnapsackInstance.to_json`), so
instances can round-trip to other solvers and published benchmark files
can be loaded directly.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from ..errors import InvalidInstanceError
from .instance import KnapsackInstance

__all__ = ["BenchmarkInstance", "parse_benchmark_text", "format_benchmark_text", "load_benchmark_file", "save_benchmark_file"]


@dataclass(frozen=True)
class BenchmarkInstance:
    """A parsed benchmark-format instance plus its optional metadata."""

    name: str
    instance: KnapsackInstance
    recorded_optimum: float | None
    recorded_solution: frozenset[int] | None


def parse_benchmark_text(text: str, *, normalize: bool = False) -> BenchmarkInstance:
    """Parse the classical text format into a :class:`BenchmarkInstance`.

    ``normalize`` applies the paper's profit normalization on load
    (default off: benchmark files carry integer profits and recorded
    optima in the same scale, which normalization would break).
    """
    lines = [ln.strip() for ln in text.strip().splitlines() if ln.strip()]
    if not lines:
        raise InvalidInstanceError("empty benchmark text")
    name = lines[0]
    n: int | None = None
    capacity: float | None = None
    optimum: float | None = None
    items: list[tuple[int, float, float, int | None]] = []
    for line in lines[1:]:
        if line.startswith("n "):
            n = int(line.split()[1])
        elif line.startswith("c "):
            capacity = float(line.split()[1])
        elif line.startswith("z "):
            optimum = float(line.split()[1])
        elif line.startswith("time "):
            continue
        elif "," in line:
            parts = [p.strip() for p in line.split(",")]
            if len(parts) < 3:
                raise InvalidInstanceError(f"malformed item line: {line!r}")
            idx = int(parts[0])
            profit = float(parts[1])
            weight = float(parts[2])
            in_opt = int(parts[3]) if len(parts) > 3 and parts[3] != "" else None
            items.append((idx, profit, weight, in_opt))
        else:
            raise InvalidInstanceError(f"unrecognized line: {line!r}")
    if capacity is None:
        raise InvalidInstanceError("benchmark text has no capacity line 'c <value>'")
    if not items:
        raise InvalidInstanceError("benchmark text has no item lines")
    if n is not None and n != len(items):
        raise InvalidInstanceError(
            f"header says n={n} but {len(items)} item lines were found"
        )
    items.sort(key=lambda t: t[0])
    profits = [p for _, p, _, _ in items]
    weights = [w for _, _, w, _ in items]
    # Benchmark files may contain items heavier than c; the paper's model
    # forbids them, so clamp-skip validation and let callers decide.
    instance = KnapsackInstance(
        profits, weights, capacity, normalize=normalize, validate=False
    )
    flags = [x for _, _, _, x in items]
    solution = (
        frozenset(i for i, x in enumerate(flags) if x == 1)
        if any(x is not None for x in flags)
        else None
    )
    return BenchmarkInstance(
        name=name,
        instance=instance,
        recorded_optimum=optimum,
        recorded_solution=solution,
    )


def format_benchmark_text(
    instance: KnapsackInstance,
    *,
    name: str = "repro-instance",
    optimum: float | None = None,
    solution=None,
) -> str:
    """Render an instance in the classical text format."""
    chosen = set(solution) if solution is not None else None
    lines = [name, f"n {instance.n}", f"c {instance.capacity:.12g}"]
    if optimum is not None:
        lines.append(f"z {optimum:.12g}")
    for i in range(instance.n):
        flag = ""
        if chosen is not None:
            flag = f",{1 if i in chosen else 0}"
        lines.append(
            f"{i + 1},{instance.profit(i):.12g},{instance.weight(i):.12g}{flag}"
        )
    return "\n".join(lines) + "\n"


def load_benchmark_file(path, *, normalize: bool = False) -> BenchmarkInstance:
    """Read a benchmark-format file from disk."""
    return parse_benchmark_text(
        pathlib.Path(path).read_text(encoding="utf-8"), normalize=normalize
    )


def save_benchmark_file(path, instance: KnapsackInstance, **kwargs) -> None:
    """Write an instance to disk in the benchmark format."""
    pathlib.Path(path).write_text(
        format_benchmark_text(instance, **kwargs), encoding="utf-8"
    )
