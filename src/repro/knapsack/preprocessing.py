"""Instance preprocessing: dominance reduction and trivial filtering.

Classic preprocessing from the exact-knapsack literature, implemented
as pure functions returning a reduced instance plus the index maps
needed to translate solutions back.  Used to shrink instances before
the exact solvers (and tested against them: preprocessing must never
change the optimal value).

* :func:`remove_overweight` — items with w > K can never be packed;
* :func:`dominance_reduction` — item j is *dominated* by item i when
  ``p_i >= p_j`` and ``w_i <= w_j`` (strict in at least one): for the
  0/1 problem a dominated item never needs to replace its dominator in
  some optimal solution **only when the dominator is itself unused**,
  so plain pairwise dominance is NOT sound for 0/1 knapsack in general
  — both can appear together.  What *is* sound: removing items
  dominated by a **zero-weight** item is pointless (nothing is freed),
  and removing items with ``p = 0, w > 0`` is always sound.  The
  classical *pairwise* dominance rule is sound for the UNBOUNDED
  problem; for 0/1 we implement the two genuinely sound 0/1 rules and
  expose the unbounded-style rule behind an explicit flag for callers
  that want the relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instance import KnapsackInstance

__all__ = ["ReducedInstance", "remove_overweight", "remove_zero_profit", "preprocess"]


@dataclass(frozen=True)
class ReducedInstance:
    """A reduced instance plus the map back to original indices.

    ``kept[i]`` is the original index of reduced item ``i``;
    ``forced_in`` are original indices provably in SOME optimal solution
    at zero cost (zero-weight positive-profit items).
    """

    instance: KnapsackInstance
    kept: tuple[int, ...]
    forced_in: frozenset[int]
    removed: frozenset[int]

    def lift_solution(self, reduced_solution) -> frozenset[int]:
        """Translate a reduced-instance solution back to original indices.

        Indices beyond ``len(kept)`` refer to padding items (present only
        in fully-reduced degenerate instances) and lift to nothing.
        """
        lifted = {
            self.kept[int(i)] for i in reduced_solution if int(i) < len(self.kept)
        }
        return frozenset(lifted | self.forced_in)


def remove_overweight(instance: KnapsackInstance) -> ReducedInstance:
    """Drop items with weight above the capacity (never packable)."""
    keep = [i for i in range(instance.n) if instance.weight(i) <= instance.capacity + 1e-12]
    return _build(instance, keep, forced=frozenset())


def remove_zero_profit(instance: KnapsackInstance) -> ReducedInstance:
    """Drop zero-profit positive-weight items; force in free profitable ones.

    * ``p = 0, w > 0``: can only consume capacity — some optimal solution
      excludes it;
    * ``p > 0, w = 0``: free profit — some optimal solution includes it.
    """
    keep = []
    forced = set()
    for i in range(instance.n):
        p, w = instance.profit(i), instance.weight(i)
        if p > 0 and w == 0:
            forced.add(i)
        elif p == 0 and w > 0:
            continue  # removed
        elif p == 0 and w == 0:
            continue  # irrelevant either way; drop for compactness
        else:
            keep.append(i)
    return _build(instance, keep, forced=frozenset(forced))


def preprocess(instance: KnapsackInstance) -> ReducedInstance:
    """Apply all sound 0/1 reductions (overweight + zero-profit rules).

    The composed reduction preserves the optimal *value* exactly:
    ``OPT(original) = OPT(reduced) + profit(forced_in)``.  Tests verify
    this against the exact solvers on random instances.
    """
    first = remove_overweight(instance)
    if not first.kept:
        return first
    second = remove_zero_profit(first.instance)
    kept = tuple(first.kept[i] for i in second.kept)
    forced = frozenset(first.kept[i] for i in second.forced_in)
    removed = frozenset(range(instance.n)) - set(kept) - forced
    return ReducedInstance(
        instance=second.instance,
        kept=kept,
        forced_in=forced,
        removed=removed,
    )


def _build(instance: KnapsackInstance, keep: list[int], *, forced: frozenset[int]) -> ReducedInstance:
    keep = [i for i in keep if i not in forced]
    if keep:
        profits = [instance.profit(i) for i in keep]
        weights = [instance.weight(i) for i in keep]
    else:
        # Degenerate but legal: everything forced or removed.  The model
        # requires at least one item, so pad with a null (0, 0) item that
        # lift_solution ignores; OPT(reduced) = 0 keeps the value
        # identity OPT(original) = OPT(reduced) + profit(forced) intact.
        profits, weights = [0.0], [0.0]
    reduced = KnapsackInstance(
        profits, weights, instance.capacity, normalize=False, validate=False
    )
    removed = frozenset(range(instance.n)) - set(keep) - forced
    return ReducedInstance(
        instance=reduced,
        kept=tuple(keep),
        forced_in=forced,
        removed=removed,
    )
