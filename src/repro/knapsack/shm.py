"""Shared-memory instance tier: one resident copy, many process shards.

Process sharding previously pickled the whole :class:`KnapsackInstance`
into every worker — O(n) serialize + copy + alias-table rebuild per
shard, which caps usable n around 10^6 and makes pool spin-up, not
per-query work, the dominant cost.  This module moves the instance's
columns into a single :mod:`multiprocessing.shared_memory` segment
(with a memmap-file fallback when POSIX shared memory is unavailable)
so every shard attaches zero-copy read-only views of the *same*
physical pages:

* :class:`SharedInstanceStore` — the owner side.  ``create()`` lays the
  profit/weight columns (plus derived columns: efficiencies and the
  sampler's prebuilt alias table) into one segment behind a JSON
  header; the store is the only party that ever ``unlink()``s it.
* :class:`SharedInstanceHandle` — the picklable token shipped to
  workers: segment name, dtype/shape metadata, capacity and a content
  digest.  A handle is a few hundred bytes regardless of n.
* :func:`SharedInstanceStore.attach` — the worker side.  Validates the
  digest *before* any query can be billed (a stale or recycled segment
  raises :class:`~repro.errors.DigestMismatchError`; a vanished one
  raises :class:`~repro.errors.SegmentMissingError`), then exposes a
  zero-copy :class:`KnapsackInstance` view and a
  :class:`~repro.access.weighted_sampler.WeightedSampler` wrapping the
  prebuilt alias columns — per-worker setup is O(1) in n.

Lifecycle is refcounted and observable: every create/attach/detach/
unlink increments an ``shm.*`` counter
(:func:`repro.obs.runtime.record_shm`), module-level registries track
live owners and attachments, and ``orphaned_system_segments()`` scans
the platform segment directory so tests and CI can assert nothing
leaked — including after fault-plan worker kills (workers never own
segments; the kernel drops their mappings on exit, and requeued rounds
re-attach the same segment).

Paper connection: "Space-efficient Local Computation Algorithms"
(Alon–Rubinfeld–Vardi–Xie) bounds the *resident state* an LCA touches;
here per-query resident memory is bounded by the sample-block size
while the instance itself stays a single shared mapping, which is what
makes honest n = 10^7–10^8 impossibility demos affordable.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import secrets
import struct
import tempfile
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import DigestMismatchError, SegmentMissingError, SharedMemoryError
from ..obs import runtime as _obs
from .instance import KnapsackInstance

__all__ = [
    "SharedInstanceHandle",
    "SharedInstanceStore",
    "attach_cached",
    "detach_cached",
    "active_segments",
    "orphaned_system_segments",
    "process_memory",
    "shm_stats",
]

#: Prefix for every segment this tier creates (leak scans key on it).
SEGMENT_PREFIX = "repro-shm-"

_MAGIC = b"repro-shm/v1"
_HEADER_BYTES = 4096
_ALIGN = 64

#: Column layout: name -> dtype.  Order is the physical layout order.
_COLUMNS: tuple[tuple[str, str], ...] = (
    ("profits", "<f8"),
    ("weights", "<f8"),
    ("efficiencies", "<f8"),
    ("alias_prob", "<f8"),
    ("alias_idx", "<i8"),
)

#: Segments created (and not yet unlinked) by this process: name ->
#: backend.  Holds no store reference on purpose — the GC-backstop
#: finalizer can only fire if this registry does not keep owners alive.
_OWNED: dict[str, str] = {}

#: Per-process attach cache: (name, digest) -> [store, refcount].
_ATTACH_CACHE: dict[tuple[str, str], list] = {}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _close_shm_quietly(shm) -> None:
    """Close a :class:`SharedMemory`, neutering it if views escaped.

    ``SharedMemory.close()`` raises :class:`BufferError` while exported
    ndarray views are still alive, and its ``__del__`` would noisily
    retry at interpreter shutdown.  On that path the mapping cannot be
    released now — neuter the object (the kernel reclaims the mapping at
    process exit; ``unlink()`` works by name and is unaffected).
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            shm._fd = -1


def _digest(profits: np.ndarray, weights: np.ndarray, capacity: float) -> str:
    """Content digest pinning instance identity (n, capacity, columns)."""
    h = hashlib.sha256()
    h.update(struct.pack("<qd", profits.size, float(capacity)))
    h.update(np.ascontiguousarray(profits, dtype="<f8").data)
    h.update(np.ascontiguousarray(weights, dtype="<f8").data)
    return h.hexdigest()[:32]


@dataclass(frozen=True)
class SharedInstanceHandle:
    """Picklable token granting attach access to a shared segment.

    Carries everything a worker needs to map and *verify* the segment —
    name, backend, item count, capacity, content digest, total byte
    length and the column offset table — and nothing that scales with n.
    """

    name: str
    backend: str  # "shm" | "mmap"
    n: int
    capacity: float
    digest: str
    nbytes: int
    columns: tuple[tuple[str, str, int], ...]  # (name, dtype, offset)
    path: str | None = None  # backing file, mmap backend only

    def __post_init__(self) -> None:
        if self.backend not in ("shm", "mmap"):
            raise SharedMemoryError(f"unknown shm backend {self.backend!r}")


class _Segment:
    """One mapped byte range, shm- or file-backed, owner- or attach-side."""

    __slots__ = ("backend", "name", "buf", "_shm", "_mmap", "_path")

    def __init__(self, backend: str, name: str, buf, shm_obj=None, mmap_obj=None, path=None):
        self.backend = backend
        self.name = name
        self.buf = buf
        self._shm = shm_obj
        self._mmap = mmap_obj
        self._path = path

    @classmethod
    def create(cls, name: str, nbytes: int, backend: str, spill_dir: str | None) -> "_Segment":
        if backend in ("auto", "shm"):
            try:
                seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
                return cls("shm", name, seg.buf, shm_obj=seg)
            except OSError:
                if backend == "shm":
                    raise
                _obs.record_shm("mmap_spills")
        path = os.path.join(spill_dir or tempfile.gettempdir(), name)
        arr = np.memmap(path, dtype=np.uint8, mode="w+", shape=(nbytes,))
        return cls("mmap", name, memoryview(arr), mmap_obj=arr, path=path)

    @classmethod
    def attach(cls, handle: SharedInstanceHandle) -> "_Segment":
        if handle.backend == "shm":
            try:
                seg = shared_memory.SharedMemory(name=handle.name, create=False)
            except FileNotFoundError:
                raise SegmentMissingError(handle.name) from None
            # Python <3.13 registers *attached* segments with the
            # resource tracker too, which would unlink them when this
            # process exits even though it does not own them.  Undo it —
            # except when this very process owns the segment (owner and
            # attacher share one tracker registration; forked workers
            # inherit ``_OWNED`` and must leave the parent's intact).
            if handle.name not in _OWNED:
                try:  # pragma: no cover - tracker internals
                    resource_tracker.unregister(seg._name, "shared_memory")
                except Exception:
                    pass
            if seg.size < handle.nbytes:
                seg.close()
                raise SharedMemoryError(
                    f"segment {handle.name!r} is {seg.size} bytes, handle "
                    f"expects >= {handle.nbytes}"
                )
            return cls("shm", handle.name, seg.buf, shm_obj=seg)
        path = handle.path or os.path.join(tempfile.gettempdir(), handle.name)
        if not os.path.exists(path):
            raise SegmentMissingError(handle.name)
        arr = np.memmap(path, dtype=np.uint8, mode="r", shape=(handle.nbytes,))
        return cls("mmap", handle.name, memoryview(arr), mmap_obj=arr, path=path)

    def close(self) -> None:
        self.buf = None
        if self._shm is not None:
            gc.collect()  # drop any lingering ndarray views over the buffer
            _close_shm_quietly(self._shm)
            self._shm = None
        self._mmap = None

    def __del__(self) -> None:
        # A segment dropped without close() (e.g. a discarded attachment
        # collected together with its views) must not let SharedMemory's
        # own __del__ raise at teardown.
        try:
            if self._shm is not None:
                _close_shm_quietly(self._shm)
                self._shm = None
        except Exception:
            pass

    def unlink(self) -> None:
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
        elif self._path is not None:
            try:
                os.unlink(self._path)
            except FileNotFoundError:
                pass


class SharedInstanceStore:
    """Owner/attachment of one shared-memory instance segment.

    Use :meth:`create` in the serving parent (owner: creates, and later
    unlinks, the segment) and :meth:`attach` in workers (maps an
    existing segment after verifying the handle's digest).  Both sides
    expose the same zero-copy products: :attr:`instance`,
    :meth:`sampler` and :meth:`column`.
    """

    def __init__(self) -> None:
        self._segment: _Segment | None = None
        self._handle: SharedInstanceHandle | None = None
        self._views: dict[str, np.ndarray] = {}
        self._instance: KnapsackInstance | None = None
        self._owner = False
        self._unlinked = False
        self._finalizer = None

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        instance: KnapsackInstance,
        *,
        backend: str = "auto",
        spill_dir: str | None = None,
    ) -> "SharedInstanceStore":
        """Lay ``instance`` (plus derived columns) into a fresh segment.

        ``backend="auto"`` prefers POSIX shared memory and spills to a
        memmapped file in ``spill_dir`` (default: the system tempdir) if
        segment creation fails; ``"shm"``/``"mmap"`` force one side.
        Derived columns — efficiencies and the sampler's alias table —
        are built once here so every attacher skips their O(n) cost.
        """
        if backend not in ("auto", "shm", "mmap"):
            raise SharedMemoryError(f"unknown shm backend {backend!r}")
        from ..access.weighted_sampler import AliasTable  # lazy: avoids an import cycle

        n = instance.n
        offsets: list[tuple[str, str, int]] = []
        cursor = _HEADER_BYTES
        for col_name, dtype in _COLUMNS:
            cursor = _align(cursor)
            offsets.append((col_name, dtype, cursor))
            cursor += n * np.dtype(dtype).itemsize
        nbytes = cursor
        digest = _digest(instance.profits, instance.weights, instance.capacity)
        name = f"{SEGMENT_PREFIX}{secrets.token_hex(8)}"
        segment = _Segment.create(name, nbytes, backend, spill_dir)

        store = cls()
        store._segment = segment
        store._owner = True
        store._handle = SharedInstanceHandle(
            name=name,
            backend=segment.backend,
            n=n,
            capacity=instance.capacity,
            digest=digest,
            nbytes=nbytes,
            columns=tuple(offsets),
            path=segment._path,
        )
        store._map_views(writable=True)
        store._views["profits"][:] = instance.profits
        store._views["weights"][:] = instance.weights
        store._views["efficiencies"][:] = instance.efficiencies()
        table = AliasTable(instance.profits)
        store._views["alias_prob"][:] = table.prob
        store._views["alias_idx"][:] = table.alias
        header = json.dumps(
            {
                "magic": _MAGIC.decode(),
                "n": n,
                "capacity": instance.capacity,
                "digest": digest,
                "nbytes": nbytes,
                "columns": offsets,
            }
        ).encode()
        if len(header) > _HEADER_BYTES - len(_MAGIC) - 4:
            raise SharedMemoryError("segment header overflow")
        segment.buf[: len(_MAGIC)] = _MAGIC
        segment.buf[len(_MAGIC) : len(_MAGIC) + 4] = struct.pack("<I", len(header))
        segment.buf[len(_MAGIC) + 4 : len(_MAGIC) + 4 + len(header)] = header
        store._freeze_views()
        _OWNED[name] = segment.backend
        _obs.record_shm("segments_created")
        # Best-effort backstop: unlink on garbage collection if the
        # owner forgot.  Explicit close() is still the contract.
        store._finalizer = weakref.finalize(
            store, _finalize_owner, name, segment.backend, segment._path
        )
        return store

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls, handle: SharedInstanceHandle, *, verify: str = "digest"
    ) -> "SharedInstanceStore":
        """Map an existing segment and verify it matches ``handle``.

        ``verify="digest"`` (default) checks the stored header digest
        against the handle's — O(1), catches recycled and mislabeled
        segments.  ``verify="full"`` additionally rehashes the mapped
        profit/weight columns — O(n), catches in-place corruption.
        Verification happens here, before the caller can construct any
        oracle or sampler, so no query is ever billed against a wrong
        instance.
        """
        if verify not in ("digest", "full", "none"):
            raise SharedMemoryError(f"unknown verify mode {verify!r}")
        segment = _Segment.attach(handle)
        try:
            head = bytes(segment.buf[:_HEADER_BYTES])
            if head[: len(_MAGIC)] != _MAGIC:
                raise DigestMismatchError(handle.name, handle.digest, "<no header>")
            (hlen,) = struct.unpack_from("<I", head, len(_MAGIC))
            meta = json.loads(head[len(_MAGIC) + 4 : len(_MAGIC) + 4 + hlen])
            if verify != "none":
                if (
                    meta["digest"] != handle.digest
                    or meta["n"] != handle.n
                    or meta["capacity"] != handle.capacity
                ):
                    raise DigestMismatchError(
                        handle.name, handle.digest, str(meta["digest"])
                    )
            store = cls()
            store._segment = segment
            store._handle = handle
            store._map_views(writable=False)
            if verify == "full":
                actual = _digest(
                    store._views["profits"], store._views["weights"], handle.capacity
                )
                if actual != handle.digest:
                    store._views.clear()
                    raise DigestMismatchError(handle.name, handle.digest, actual)
        except Exception:
            segment.close()
            raise
        _obs.record_shm("attaches")
        return store

    # ------------------------------------------------------------------
    def _map_views(self, *, writable: bool) -> None:
        handle = self._handle
        assert handle is not None and self._segment is not None
        for col_name, dtype, offset in handle.columns:
            arr = np.frombuffer(
                self._segment.buf, dtype=dtype, count=handle.n, offset=offset
            )
            if not writable:
                arr = arr.view()
                arr.setflags(write=False)
            self._views[col_name] = arr

    def _freeze_views(self) -> None:
        for arr in self._views.values():
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Zero-copy products
    # ------------------------------------------------------------------
    @property
    def handle(self) -> SharedInstanceHandle:
        """The picklable attach token for this segment."""
        if self._handle is None:
            raise SharedMemoryError("store is closed")
        return self._handle

    @property
    def instance(self) -> KnapsackInstance:
        """Zero-copy :class:`KnapsackInstance` over the shared columns."""
        if self._instance is None:
            if not self._views:
                raise SharedMemoryError("store is closed")
            self._instance = KnapsackInstance.from_arrays_view(
                self._views["profits"],
                self._views["weights"],
                self.handle.capacity,
            )
        return self._instance

    def column(self, name: str) -> np.ndarray:
        """One shared column by name (read-only view)."""
        if not self._views:
            raise SharedMemoryError("store is closed")
        try:
            return self._views[name]
        except KeyError:
            raise SharedMemoryError(f"unknown shared column {name!r}") from None

    def sampler(self, *, budget: int | None = None):
        """A :class:`WeightedSampler` wrapping the shared alias columns.

        O(1) in n: the alias table was built once at ``create()`` time;
        this re-wraps the shared ``alias_prob``/``alias_idx`` columns.
        """
        from ..access.weighted_sampler import AliasTable, WeightedSampler

        table = AliasTable.from_arrays(
            self.column("alias_prob"), self.column("alias_idx")
        )
        return WeightedSampler(self.instance, budget=budget, table=table)

    def efficiencies(self) -> np.ndarray:
        """The precomputed shared efficiency column."""
        return self.column("efficiencies")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def owner(self) -> bool:
        """True for the creating store (the only one that unlinks)."""
        return self._owner

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._segment is None

    def close(self) -> None:
        """Drop mappings; the owner additionally unlinks the segment.

        Idempotent.  Attach-side ``close()`` only unmaps (the segment
        survives for other attachments); owner-side ``close()`` retires
        the segment system-wide.
        """
        if self._segment is None:
            return
        self._instance = None
        self._handle = None
        self._views.clear()
        if self._owner and not self._unlinked:
            self._unlinked = True
            self._segment.unlink()
            _OWNED.pop(self._segment.name, None)
            _obs.record_shm("segments_unlinked")
            if self._finalizer is not None:
                self._finalizer.detach()
        else:
            _obs.record_shm("detaches")
        self._segment.close()
        self._segment = None

    def __enter__(self) -> "SharedInstanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Shape/size facts for CLI and service ``stats()`` surfaces."""
        handle = self.handle
        return {
            "name": handle.name,
            "backend": handle.backend,
            "n": handle.n,
            "nbytes": handle.nbytes,
            "digest": handle.digest,
            "owner": self._owner,
            "columns": [c[0] for c in handle.columns],
        }


def _finalize_owner(name: str, backend: str, path: str | None) -> None:
    """GC backstop for an owner store that was never close()d."""
    if name not in _OWNED:
        return
    _OWNED.pop(name, None)
    try:
        if backend == "shm":
            seg = shared_memory.SharedMemory(name=name, create=False)
            seg.close()
            seg.unlink()
        elif path is not None:
            os.unlink(path)
        _obs.record_shm("segments_unlinked")
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Per-process attach cache (workers attach once per segment, not per chunk)
# ----------------------------------------------------------------------
def attach_cached(handle: SharedInstanceHandle) -> SharedInstanceStore:
    """Attach with a per-process cache keyed on ``(name, digest)``.

    Pool workers serve many chunks of the same batch; re-mapping (and
    re-verifying) the segment per chunk would waste syscalls.  The first
    call attaches and verifies; subsequent calls bump a refcount and
    record an ``shm.attach_hits`` counter.  Pair with
    :func:`detach_cached`, or let process exit reclaim the mappings
    (workers never own segments, so nothing can leak system-wide).
    """
    key = (handle.name, handle.digest)
    entry = _ATTACH_CACHE.get(key)
    if entry is not None:
        entry[1] += 1
        _obs.record_shm("attach_hits")
        return entry[0]
    store = SharedInstanceStore.attach(handle)
    _ATTACH_CACHE[key] = [store, 1]
    return store


def detach_cached(handle: SharedInstanceHandle) -> None:
    """Release one :func:`attach_cached` reference; unmap on the last."""
    key = (handle.name, handle.digest)
    entry = _ATTACH_CACHE.get(key)
    if entry is None:
        return
    entry[1] -= 1
    if entry[1] <= 0:
        _ATTACH_CACHE.pop(key, None)
        entry[0].close()


# ----------------------------------------------------------------------
# Leak accounting
# ----------------------------------------------------------------------
def active_segments() -> list[str]:
    """Names of segments this process created and has not yet unlinked."""
    return sorted(_OWNED)


def orphaned_system_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Segment files matching ``prefix`` visible system-wide.

    Scans the platform shared-memory directory (``/dev/shm`` on Linux)
    plus the memmap spill directory.  After every store is closed this
    must be empty — the CI leak check and the lifecycle tests assert
    exactly that.
    """
    found: list[str] = []
    for root in ("/dev/shm", tempfile.gettempdir()):
        try:
            names = os.listdir(root)
        except OSError:
            continue
        found.extend(sorted(n for n in names if n.startswith(prefix)))
    return found


def process_memory() -> dict:
    """Resident/private memory of this process, in KiB.

    ``private_kb`` (from ``/proc/self/smaps_rollup``) excludes pages
    shared with other processes — it is the honest "per-worker overhead"
    number for the bench's RSS column, since shared segment pages are
    counted once system-wide, not once per worker.  Falls back to
    peak-RSS-only where smaps is unavailable.
    """
    out = {"rss_kb": 0, "private_kb": None}
    try:
        with open("/proc/self/smaps_rollup") as fh:
            private = 0
            for line in fh:
                if line.startswith("Rss:"):
                    out["rss_kb"] = int(line.split()[1])
                elif line.startswith(("Private_Clean:", "Private_Dirty:")):
                    private += int(line.split()[1])
            out["private_kb"] = private
    except OSError:
        import resource

        out["rss_kb"] = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return out


def shm_stats() -> dict:
    """Process-wide shared-memory tier accounting (CLI surface)."""
    counters = {
        key: value
        for key, value in _obs.snapshot().get("counters", {}).items()
        if key.startswith("shm.")
    }
    return {
        "owned_segments": active_segments(),
        "attach_cache": len(_ATTACH_CACHE),
        "orphans": orphaned_system_segments(),
        "counters": counters,
        "memory": process_memory(),
    }
