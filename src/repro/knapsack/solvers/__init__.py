"""Knapsack solvers: exact references and classical approximations.

The paper's positive result leans on two classical algorithms — greedy
by efficiency and the derived 1/2-approximation — and its analysis
compares against OPT.  This package provides those plus three
independent exact solvers (branch-and-bound, weight-DP, profit-DP /
meet-in-the-middle) used as cross-checking ground truth in tests and
benches.

:func:`solve_exact` picks a suitable exact solver automatically.
"""

from __future__ import annotations

from ...errors import SolverError
from ..instance import KnapsackInstance
from .branch_and_bound import branch_and_bound
from .exact_dp import dp_by_profit, dp_by_weight
from .fptas import fptas
from .fractional import FractionalSolution, fractional_optimum, fractional_upper_bound
from .greedy import greedy_order, half_approximation, prefix_greedy, skipping_greedy
from .meet_in_middle import meet_in_middle
from .result import SolverResult

__all__ = [
    "SolverResult",
    "greedy_order",
    "prefix_greedy",
    "skipping_greedy",
    "half_approximation",
    "FractionalSolution",
    "fractional_optimum",
    "fractional_upper_bound",
    "branch_and_bound",
    "dp_by_weight",
    "dp_by_profit",
    "meet_in_middle",
    "fptas",
    "solve_exact",
]


def solve_exact(instance: KnapsackInstance, *, node_limit: int = 5_000_000) -> SolverResult:
    """Solve exactly with the most appropriate engine.

    Strategy: meet-in-the-middle for tiny instances (immune to pruning
    pathologies), otherwise branch-and-bound.  Raises
    :class:`~repro.errors.SolverError` if the instance defeats both.
    """
    if instance.n <= 30:
        return meet_in_middle(instance)
    try:
        return branch_and_bound(instance, node_limit=node_limit)
    except SolverError as exc:
        raise SolverError(
            f"no exact solver could handle this instance (n={instance.n}): {exc}"
        ) from exc
