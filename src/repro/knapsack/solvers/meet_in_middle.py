"""Exact meet-in-the-middle Knapsack solver.

Splits the item set in two halves, enumerates all subsets of each half
(O(2^(n/2)) time/space), prunes the second half's subsets to the Pareto
frontier (weight up, value up), and matches each first-half subset with
the best compatible second-half subset by binary search.

Exact on arbitrary real-valued data; practical to ~n = 40.  Used by the
test suite to cross-validate branch-and-bound and the DPs on small
random instances — three independent exact solvers catching each other's
bugs.
"""

from __future__ import annotations

import bisect
from itertools import combinations

from ...errors import SolverError
from ..instance import KnapsackInstance
from .result import SolverResult

__all__ = ["meet_in_middle"]

_MAX_N = 44


def _enumerate_half(instance: KnapsackInstance, indices: list[int]):
    """All (weight, value, subset-mask-as-tuple) triples for one half."""
    out = []
    for r in range(len(indices) + 1):
        for combo in combinations(indices, r):
            w = instance.weight_of(combo)
            if w <= instance.capacity + 1e-12:
                out.append((w, instance.profit_of(combo), combo))
    return out


def meet_in_middle(instance: KnapsackInstance) -> SolverResult:
    """Solve Knapsack exactly via meet-in-the-middle (n <= 44)."""
    n = instance.n
    if n > _MAX_N:
        raise SolverError(f"meet_in_middle supports n <= {_MAX_N}, got {n}")
    left = list(range(n // 2))
    right = list(range(n // 2, n))

    left_sets = _enumerate_half(instance, left)
    right_sets = _enumerate_half(instance, right)

    # Pareto-prune the right half: sort by weight, keep only entries with
    # strictly increasing value; then best value for weight <= x is a
    # prefix-max lookup.
    right_sets.sort(key=lambda t: (t[0], -t[1]))
    pareto: list[tuple[float, float, tuple]] = []
    best_value = -1.0
    for w, v, combo in right_sets:
        if v > best_value:
            pareto.append((w, v, combo))
            best_value = v
    pareto_weights = [t[0] for t in pareto]

    best = (-1.0, (), ())
    cap = instance.capacity
    for w, v, combo in left_sets:
        budget = cap - w + 1e-12
        pos = bisect.bisect_right(pareto_weights, budget) - 1
        if pos < 0:
            continue
        total = v + pareto[pos][1]
        if total > best[0]:
            best = (total, combo, pareto[pos][2])

    chosen = list(best[1]) + list(best[2])
    return SolverResult.from_indices(
        instance,
        chosen,
        solver="meet_in_middle",
        exact=True,
        meta={"left_subsets": len(left_sets), "right_pareto": len(pareto)},
    )
