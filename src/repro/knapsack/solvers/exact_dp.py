"""Exact dynamic-programming solvers for integral Knapsack data.

Two classic DPs:

* :func:`dp_by_weight` — O(n * K) table over integer weights; exact when
  weights and the capacity are integers (profits may be real).
* :func:`dp_by_profit` — O(n * P) table over integer profits; exact when
  profits are integers (weights may be real).  This is the DP the FPTAS
  (:mod:`repro.knapsack.solvers.fptas`) scales profits into.

Both reconstruct the selected item set, not just the value.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import SolverError
from ..instance import KnapsackInstance
from .result import SolverResult

__all__ = ["dp_by_weight", "dp_by_profit"]

_CELL_LIMIT = 200_000_000  # refuse DP tables above ~200M cells


def dp_by_weight(
    instance: KnapsackInstance,
    *,
    weight_scale: float = 1.0,
    tol: float = 1e-9,
) -> SolverResult:
    """Exact DP over integer weights.

    ``weight_scale`` lets callers solve instances whose weights are
    integral multiples of some unit (e.g. normalized weights k/B): the
    DP runs on ``round(w * weight_scale)``.  Raises :class:`SolverError`
    if the scaled weights are not integral within ``tol``, or if the
    table would be unreasonably large.
    """
    scaled_w = instance.weights * weight_scale
    int_w = np.rint(scaled_w)
    if np.max(np.abs(scaled_w - int_w)) > tol:
        raise SolverError(
            "dp_by_weight requires integral (scaled) weights; "
            "use branch_and_bound or fptas for real-valued weights"
        )
    cap = int(math.floor(instance.capacity * weight_scale + tol))
    weights = int_w.astype(np.int64)
    profits = instance.profits
    n = instance.n
    if (cap + 1) * n > _CELL_LIMIT:
        raise SolverError(
            f"dp_by_weight table too large: {(cap + 1) * n} cells "
            f"(n={n}, scaled capacity={cap})"
        )

    # value[c] = best profit using a prefix of items with weight budget c.
    value = np.zeros(cap + 1)
    # take[i, c] would need O(n*cap) bits; store per-item bitsets compactly
    # as a list of boolean arrays (one per item) for reconstruction.
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        w = int(weights[i])
        p = float(profits[i])
        if w == 0:
            if p > 0:
                value += p
                take[i, :] = True
            continue
        if w > cap:
            continue
        shifted = value[: cap + 1 - w] + p
        improved = shifted > value[w:] + 1e-15
        take[i, w:] = improved
        value[w:] = np.where(improved, shifted, value[w:])

    # Reconstruct.
    chosen: list[int] = []
    c = cap
    for i in range(n - 1, -1, -1):
        if take[i, c]:
            chosen.append(i)
            c -= int(weights[i])
    return SolverResult.from_indices(
        instance,
        chosen,
        solver="dp_by_weight",
        exact=True,
        meta={"table_cells": (cap + 1) * n},
    )


def dp_by_profit(
    instance: KnapsackInstance,
    *,
    profit_scale: float = 1.0,
    tol: float = 1e-9,
) -> SolverResult:
    """Exact DP over integer profits (min-weight-for-profit formulation).

    ``weight[v]`` is the minimum weight achieving total (scaled) profit
    exactly ``v``; the answer is the largest ``v`` with
    ``weight[v] <= K``.  Raises :class:`SolverError` when scaled profits
    are not integral within ``tol``.
    """
    scaled_p = instance.profits * profit_scale
    int_p = np.rint(scaled_p)
    if np.max(np.abs(scaled_p - int_p)) > tol:
        raise SolverError(
            "dp_by_profit requires integral (scaled) profits; "
            "scale via fptas() for real-valued profits"
        )
    profits = int_p.astype(np.int64)
    weights = instance.weights
    n = instance.n
    total = int(profits.sum())
    if (total + 1) * n > _CELL_LIMIT:
        raise SolverError(
            f"dp_by_profit table too large: {(total + 1) * n} cells "
            f"(n={n}, total scaled profit={total})"
        )

    INF = math.inf
    min_weight = np.full(total + 1, INF)
    min_weight[0] = 0.0
    take = np.zeros((n, total + 1), dtype=bool)
    for i in range(n):
        p = int(profits[i])
        w = float(weights[i])
        if p == 0:
            # Zero-profit items never help an exact max-profit solution.
            continue
        cand = min_weight[: total + 1 - p] + w
        improved = cand < min_weight[p:] - 1e-15
        take[i, p:] = improved
        min_weight[p:] = np.where(improved, cand, min_weight[p:])

    feasible = np.nonzero(min_weight <= instance.capacity + 1e-9)[0]
    best_v = int(feasible.max()) if feasible.size else 0

    chosen: list[int] = []
    v = best_v
    for i in range(n - 1, -1, -1):
        if v > 0 and take[i, v]:
            chosen.append(i)
            v -= int(profits[i])
    if v != 0:
        raise SolverError("dp_by_profit reconstruction failed (internal error)")
    return SolverResult.from_indices(
        instance,
        chosen,
        solver="dp_by_profit",
        exact=True,
        meta={"table_cells": (total + 1) * n, "scaled_value": best_v},
    )
