"""Greedy Knapsack algorithms and the classic 1/2-approximation.

These are the algorithms the paper's positive result is built on
(Section 1.2 "Knapsack", [WS11, Exercise 3.1]):

* :func:`greedy_order` — items sorted by non-increasing efficiency;
* :func:`prefix_greedy` — include items in that order, *stopping* at the
  first item that does not fit (the paper's greedy; its cut point
  defines the "efficiency cut-off" CONVERT-GREEDY extracts);
* :func:`skipping_greedy` — the variant that keeps scanning past items
  that do not fit (a strictly better packing, provided for comparison);
* :func:`half_approximation` — the better of the greedy prefix and the
  singleton consisting of the first item the prefix left out; guarantees
  value >= OPT/2.

Ties in efficiency are broken by ascending index so all algorithms are
deterministic.
"""

from __future__ import annotations

import numpy as np

from ..instance import KnapsackInstance
from .result import SolverResult

__all__ = [
    "greedy_order",
    "prefix_greedy",
    "skipping_greedy",
    "half_approximation",
]


def greedy_order(instance: KnapsackInstance) -> np.ndarray:
    """Item indices sorted by non-increasing efficiency (ties: by index).

    Zero-weight profitable items have infinite efficiency and therefore
    come first, matching the convention in :func:`repro.knapsack.items.efficiency`.
    """
    eff = instance.efficiencies()
    # np.argsort is stable with kind="stable"; sort on -eff so that equal
    # efficiencies keep ascending index order.
    order = np.argsort(-eff, kind="stable")
    return order


def prefix_greedy(instance: KnapsackInstance) -> SolverResult:
    """Greedy prefix: take items in efficiency order until one fails to fit.

    Returns the selected prefix; ``meta`` carries the greedy machinery the
    LCA needs:

    * ``order`` — the full greedy order;
    * ``cut_index`` — position (in the order) of the first item that did
      not fit, or ``len(order)`` if everything fit;
    * ``first_rejected`` — the instance index of that item, or ``None``;
    * ``cutoff_efficiency`` — the efficiency of the first rejected item
      (the paper's *efficiency cut-off*), or ``None``.
    """
    order = greedy_order(instance)
    remaining = instance.capacity
    chosen: list[int] = []
    cut_index = len(order)
    first_rejected: int | None = None
    for pos, idx in enumerate(order):
        w = instance.weight(int(idx))
        if w <= remaining + 1e-12:
            chosen.append(int(idx))
            remaining -= w
        else:
            cut_index = pos
            first_rejected = int(idx)
            break
    cutoff = instance.efficiency(first_rejected) if first_rejected is not None else None
    return SolverResult.from_indices(
        instance,
        chosen,
        solver="prefix_greedy",
        meta={
            "order": order.tolist(),
            "cut_index": cut_index,
            "first_rejected": first_rejected,
            "cutoff_efficiency": cutoff,
        },
    )


def skipping_greedy(instance: KnapsackInstance) -> SolverResult:
    """Greedy that skips non-fitting items instead of stopping.

    Always at least as good as :func:`prefix_greedy`; included as a
    baseline so benches can quantify how much the paper's simpler greedy
    leaves on the table.
    """
    order = greedy_order(instance)
    remaining = instance.capacity
    chosen: list[int] = []
    skipped = 0
    for idx in order:
        w = instance.weight(int(idx))
        if w <= remaining + 1e-12:
            chosen.append(int(idx))
            remaining -= w
        else:
            skipped += 1
    return SolverResult.from_indices(
        instance, chosen, solver="skipping_greedy", meta={"skipped": skipped}
    )


def half_approximation(instance: KnapsackInstance) -> SolverResult:
    """The classic 1/2-approximation: max(greedy prefix, first-rejected singleton).

    For every instance, the greedy prefix plus the first rejected item
    has value at least the fractional optimum, hence at least OPT; taking
    the better of the two parts therefore yields value >= OPT/2.  The
    ``meta`` records which branch won (``"prefix"`` or ``"singleton"``)
    — the same dichotomy CONVERT-GREEDY (Algorithm 3) resolves with its
    ``B_indicator`` flag.
    """
    prefix = prefix_greedy(instance)
    rejected = prefix.meta["first_rejected"]
    if rejected is None:
        return SolverResult.from_indices(
            instance,
            prefix.indices,
            solver="half_approximation",
            meta={**prefix.meta, "branch": "prefix"},
        )
    singleton_value = instance.profit(rejected)
    if prefix.value >= singleton_value:
        branch, indices = "prefix", prefix.indices
    else:
        branch, indices = "singleton", frozenset({rejected})
    return SolverResult.from_indices(
        instance,
        indices,
        solver="half_approximation",
        meta={**prefix.meta, "branch": branch},
    )
