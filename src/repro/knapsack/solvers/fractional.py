"""Fractional (LP-relaxation) Knapsack.

Solved exactly by the greedy rule (Section 1.2): take items in
non-increasing efficiency order, then a fractional share of the first
item that does not fit.  The fractional optimum upper-bounds the 0/1
optimum, which is what the branch-and-bound solver prunes with and what
the 1/2-approximation's analysis compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instance import KnapsackInstance
from .greedy import greedy_order

__all__ = ["FractionalSolution", "fractional_optimum", "fractional_upper_bound"]


@dataclass(frozen=True)
class FractionalSolution:
    """Optimal fractional packing.

    ``full_indices`` are taken whole; ``fractional_index`` (if any) is
    taken with coefficient ``fraction`` in (0, 1).
    """

    full_indices: frozenset[int]
    fractional_index: int | None
    fraction: float
    value: float
    weight: float


def fractional_optimum(instance: KnapsackInstance) -> FractionalSolution:
    """Solve Fractional Knapsack exactly via the greedy rule."""
    order = greedy_order(instance)
    remaining = instance.capacity
    value = 0.0
    full: list[int] = []
    frac_idx: int | None = None
    fraction = 0.0
    for idx in order:
        i = int(idx)
        w = instance.weight(i)
        p = instance.profit(i)
        if w <= remaining + 1e-12:
            full.append(i)
            remaining -= w
            value += p
        else:
            if remaining > 0 and w > 0:
                fraction = remaining / w
                frac_idx = i
                value += p * fraction
                remaining = 0.0
            break
    weight = instance.capacity - remaining if frac_idx is not None else instance.weight_of(full)
    return FractionalSolution(
        full_indices=frozenset(full),
        fractional_index=frac_idx,
        fraction=fraction,
        value=value,
        weight=weight,
    )


def fractional_upper_bound(instance: KnapsackInstance) -> float:
    """Value of the fractional optimum (an upper bound on the 0/1 OPT)."""
    return fractional_optimum(instance).value
