"""Fully polynomial-time approximation scheme (FPTAS) for Knapsack.

The classic profit-rounding FPTAS ([WS11, Section 3.2], which the paper
cites in its footnote 5 as the alternative route to a finite efficiency
domain): round each profit down to a multiple of mu = eps * P_max / n,
run the exact profit-indexed DP on the rounded instance, and return that
solution evaluated on the *original* profits.  Guarantees value
>= (1 - eps) * OPT in O(n^3 / eps) time.
"""

from __future__ import annotations

import numpy as np

from ...errors import SolverError
from ..instance import KnapsackInstance
from .exact_dp import dp_by_profit
from .result import SolverResult

__all__ = ["fptas"]


def fptas(instance: KnapsackInstance, epsilon: float = 0.1) -> SolverResult:
    """Return a (1 - epsilon)-approximate solution.

    ``meta`` records the rounding unit ``mu`` and the DP size, so benches
    can report the accuracy/work trade-off.
    """
    if not 0 < epsilon < 1:
        raise SolverError(f"epsilon must lie in (0, 1), got {epsilon}")
    n = instance.n
    # Only items that fit at all can be in any solution; the largest
    # fitting profit calibrates the rounding unit.
    fitting = np.nonzero(instance.weights <= instance.capacity + 1e-12)[0]
    if fitting.size == 0:
        return SolverResult.from_indices(
            instance, (), solver="fptas", meta={"mu": 0.0, "epsilon": epsilon}
        )
    p_max = float(instance.profits[fitting].max())
    if p_max <= 0:
        return SolverResult.from_indices(
            instance, (), solver="fptas", meta={"mu": 0.0, "epsilon": epsilon}
        )
    mu = epsilon * p_max / n

    rounded = np.floor(instance.profits / mu)
    # Build a scaled instance whose profits are the integers floor(p/mu).
    # Items rounded to zero profit can be dropped from the DP outright.
    scaled = KnapsackInstance(
        rounded,
        instance.weights,
        instance.capacity,
        normalize=False,
        validate=False,
    )
    result = dp_by_profit(scaled, profit_scale=1.0)
    return SolverResult.from_indices(
        instance,
        result.indices,
        solver="fptas",
        meta={
            "mu": mu,
            "epsilon": epsilon,
            "scaled_value": result.meta.get("scaled_value"),
            "table_cells": result.meta.get("table_cells"),
        },
    )
