"""Exact branch-and-bound Knapsack solver for real-valued data.

Depth-first branch and bound in greedy (efficiency) order with the
fractional-relaxation upper bound for pruning.  Works directly on float
profits/weights — unlike the DP solvers it needs no integrality — so it
is the reference "ground truth" for the approximation benches on
moderate instance sizes (hundreds of items for typical random families).

A node limit guards against adversarial instances where pruning is
ineffective; hitting the limit raises :class:`SolverError` rather than
silently returning a non-optimal answer.
"""

from __future__ import annotations

import numpy as np

from ...errors import SolverError
from ..instance import KnapsackInstance
from .greedy import greedy_order
from .result import SolverResult

__all__ = ["branch_and_bound"]


def branch_and_bound(
    instance: KnapsackInstance,
    *,
    node_limit: int = 5_000_000,
) -> SolverResult:
    """Solve Knapsack exactly; raises :class:`SolverError` past ``node_limit``.

    The search explores items in non-increasing efficiency order,
    branching include-first, and prunes a node whenever the fractional
    bound of its residual subproblem cannot beat the incumbent.
    """
    order = greedy_order(instance)
    profits = instance.profits[order]
    weights = instance.weights[order]
    capacity = instance.capacity
    n = instance.n

    # Suffix arrays for the fractional bound: from position k onward,
    # items are already efficiency-sorted, so the bound is a prefix walk.
    suffix_profit = np.concatenate([np.cumsum(profits[::-1])[::-1], [0.0]])
    suffix_weight = np.concatenate([np.cumsum(weights[::-1])[::-1], [0.0]])

    def fractional_bound(pos: int, remaining: float) -> float:
        """Fractional optimum of the subproblem on items order[pos:]."""
        if remaining <= 0:
            return 0.0
        if suffix_weight[pos] <= remaining:
            return float(suffix_profit[pos])
        bound = 0.0
        cap = remaining
        for k in range(pos, n):
            w = weights[k]
            if w <= cap:
                bound += profits[k]
                cap -= w
            else:
                if w > 0:
                    bound += profits[k] * (cap / w)
                break
        return float(bound)

    best_value = -1.0
    best_set: list[int] = []
    current: list[int] = []
    nodes = 0

    # Iterative DFS: stack of (pos, remaining, value, decision) where
    # decision marks whether we are entering (None) or backtracking.
    def dfs(pos: int, remaining: float, value: float) -> None:
        nonlocal best_value, best_set, nodes
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"branch_and_bound exceeded node limit {node_limit}; "
                "use fptas() or a smaller instance"
            )
        if value > best_value:
            best_value = value
            best_set = current.copy()
        if pos >= n:
            return
        if value + fractional_bound(pos, remaining) <= best_value + 1e-12:
            return
        w = weights[pos]
        # Include branch first (greedy order makes it the promising one).
        if w <= remaining + 1e-12:
            current.append(pos)
            dfs(pos + 1, remaining - w, value + profits[pos])
            current.pop()
        dfs(pos + 1, remaining, value)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n * 2 + 100))
    try:
        dfs(0, capacity, 0.0)
    finally:
        sys.setrecursionlimit(old_limit)

    chosen = [int(order[k]) for k in best_set]
    return SolverResult.from_indices(
        instance,
        chosen,
        solver="branch_and_bound",
        exact=True,
        meta={"nodes": nodes},
    )
