"""Common result type returned by every solver in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ...errors import InfeasibleSolutionError
from ..instance import KnapsackInstance

__all__ = ["SolverResult"]


@dataclass(frozen=True)
class SolverResult:
    """Outcome of a Knapsack solver.

    Attributes
    ----------
    indices:
        The selected item set (0-based indices into the instance).
    value:
        Total profit of the selected set.
    weight:
        Total weight of the selected set.
    solver:
        Name of the algorithm that produced the result.
    exact:
        True when the solver guarantees optimality.
    meta:
        Solver-specific diagnostics (node counts, thresholds, ...).
    """

    indices: frozenset[int]
    value: float
    weight: float
    solver: str
    exact: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_indices(
        cls,
        instance: KnapsackInstance,
        indices,
        solver: str,
        *,
        exact: bool = False,
        check_feasible: bool = True,
        meta: dict[str, Any] | None = None,
    ) -> "SolverResult":
        """Build a result, computing value/weight from the instance.

        ``check_feasible=True`` (the default) raises
        :class:`InfeasibleSolutionError` if the set overflows the
        capacity — solvers should never emit infeasible answers, so this
        is an internal assertion more than a user-facing check.
        """
        chosen = frozenset(int(i) for i in indices)
        value = instance.profit_of(chosen)
        weight = instance.weight_of(chosen)
        if check_feasible and weight > instance.capacity + 1e-9:
            raise InfeasibleSolutionError(
                f"solver {solver!r} produced an infeasible solution: "
                f"weight {weight} > capacity {instance.capacity}"
            )
        return cls(
            indices=chosen,
            value=value,
            weight=weight,
            solver=solver,
            exact=exact,
            meta=dict(meta or {}),
        )

    def __len__(self) -> int:
        return len(self.indices)

    def __contains__(self, i: int) -> bool:
        return int(i) in self.indices
