"""Knapsack instance representation.

Two representations coexist:

* :class:`KnapsackInstance` — an explicit, array-backed instance.  This is
  what solvers, generators and tests use.  It enforces the paper's model
  (Definition 2.2): profits normalized to total 1, every individual
  weight at most the capacity ``K``.
* :class:`InstanceLike` — the minimal protocol the *oracles* in
  :mod:`repro.access` need (``n``, ``capacity``, ``profit(i)``,
  ``weight(i)``).  Implicitly-defined massive instances (see
  ``examples/massive_instance.py``) implement this protocol without ever
  materializing arrays; the LCA only ever touches instances through
  oracles, so it is oblivious to the representation.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import InvalidInstanceError, NormalizationError
from .items import Item, efficiency

__all__ = ["InstanceLike", "KnapsackInstance", "SolutionStats"]


@runtime_checkable
class InstanceLike(Protocol):
    """Minimal read-only interface to a Knapsack instance.

    The LCA model gives algorithms *query access*: ask for item ``i``,
    receive ``(p_i, w_i)``.  Anything satisfying this protocol can be
    wrapped in a :class:`repro.access.QueryOracle`.
    """

    @property
    def n(self) -> int:  # pragma: no cover - protocol
        """Number of items."""
        ...

    @property
    def capacity(self) -> float:  # pragma: no cover - protocol
        """The weight limit K."""
        ...

    def profit(self, i: int) -> float:  # pragma: no cover - protocol
        """Profit of item ``i`` (0-based)."""
        ...

    def weight(self, i: int) -> float:  # pragma: no cover - protocol
        """Weight of item ``i`` (0-based)."""
        ...


class KnapsackInstance:
    """Explicit array-backed Knapsack instance ``I = (S, K)``.

    Parameters
    ----------
    profits, weights:
        Per-item profits and weights.  Must have equal length.
    capacity:
        The weight limit ``K >= 0``.
    normalize:
        If true (the default), profits are rescaled so they sum to 1 —
        the normalization Definition 2.2 assumes and the weighted
        sampling model requires (sampling probability equals profit).
    normalize_weights:
        If true, weights *and the capacity* are divided by the total
        weight, realizing the second normalization Section 4 assumes
        ("total profit and weight are both normalized to 1").  This is
        a pure rescaling: feasible sets, optimal sets and approximation
        ratios are unchanged, but efficiencies rescale, which matters
        for the L/S/G partition (e.g. the garbage bound p(G) <= eps^2
        in Lemma 4.6 holds only under it).  Defaults to false because
        the Section 3 lower-bound constructions use unnormalized
        weights.
    validate:
        If true (the default), structural invariants are checked and an
        :class:`InvalidInstanceError` is raised on violation.

    Notes
    -----
    The paper's model requires every individual weight to be at most
    ``K`` ("the (integer) weight of any item in S is at most K").  We
    enforce this under ``validate=True``; an item heavier than the
    capacity could never appear in any feasible solution, and several of
    the paper's arguments (e.g. feasibility of singleton solutions in
    Lemma 4.7) silently rely on the invariant.
    """

    __slots__ = ("_profits", "_weights", "_capacity")

    def __init__(
        self,
        profits: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
        capacity: float,
        *,
        normalize: bool = True,
        normalize_weights: bool = False,
        validate: bool = True,
    ) -> None:
        profits_arr = np.asarray(profits, dtype=float).copy()
        weights_arr = np.asarray(weights, dtype=float).copy()
        if profits_arr.ndim != 1 or weights_arr.ndim != 1:
            raise InvalidInstanceError("profits and weights must be 1-D sequences")
        if profits_arr.shape != weights_arr.shape:
            raise InvalidInstanceError(
                f"profits ({profits_arr.size}) and weights ({weights_arr.size}) "
                "must have the same length"
            )
        if normalize:
            total = float(profits_arr.sum())
            if total <= 0:
                raise NormalizationError(
                    "cannot normalize profits: total profit must be positive"
                )
            profits_arr = profits_arr / total
        if normalize_weights:
            total_w = float(weights_arr.sum())
            if total_w <= 0:
                raise NormalizationError(
                    "cannot normalize weights: total weight must be positive"
                )
            weights_arr = weights_arr / total_w
            capacity = float(capacity) / total_w
        self._profits = profits_arr
        self._weights = weights_arr
        self._capacity = float(capacity)
        if validate:
            self.validate()
        self._profits.setflags(write=False)
        self._weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_items(
        cls,
        items: Iterable[Item | tuple[float, float]],
        capacity: float,
        *,
        normalize: bool = True,
        validate: bool = True,
    ) -> "KnapsackInstance":
        """Build an instance from ``Item`` objects or ``(p, w)`` tuples."""
        pairs = [it.as_tuple() if isinstance(it, Item) else (float(it[0]), float(it[1])) for it in items]
        if not pairs:
            raise InvalidInstanceError("an instance must contain at least one item")
        profits, weights = zip(*pairs)
        return cls(profits, weights, capacity, normalize=normalize, validate=validate)

    @classmethod
    def from_arrays_view(
        cls,
        profits: np.ndarray,
        weights: np.ndarray,
        capacity: float,
        *,
        validate: bool = False,
    ) -> "KnapsackInstance":
        """Adopt existing float64 arrays zero-copy (no normalization).

        The shared-memory tier uses this to wrap segment-backed columns:
        ``__init__`` copies its inputs (defensive ownership), which would
        defeat the point of a shared segment.  The arrays are adopted
        as-is and marked read-only *in the view metadata only* — the
        underlying buffer is untouched, so shared-memory pages stay
        shared.  ``validate`` defaults to off because the tier verifies
        instance identity by content digest instead; pass ``True`` when
        adopting arrays of unknown provenance.
        """
        profits = np.asarray(profits)
        weights = np.asarray(weights)
        if profits.dtype != np.float64 or weights.dtype != np.float64:
            raise InvalidInstanceError(
                "from_arrays_view requires float64 arrays (got "
                f"{profits.dtype}, {weights.dtype})"
            )
        if profits.ndim != 1 or profits.shape != weights.shape:
            raise InvalidInstanceError(
                "profits and weights must be equal-length 1-D arrays"
            )
        instance = object.__new__(cls)
        instance._profits = profits.view()
        instance._weights = weights.view()
        instance._capacity = float(capacity)
        instance._profits.setflags(write=False)
        instance._weights.setflags(write=False)
        if validate:
            instance.validate()
        return instance

    @classmethod
    def from_dict(cls, payload: dict) -> "KnapsackInstance":
        """Inverse of :meth:`to_dict` (no re-normalization: loads verbatim)."""
        return cls(
            payload["profits"],
            payload["weights"],
            payload["capacity"],
            normalize=False,
            validate=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "KnapsackInstance":
        """Load an instance from the JSON produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # InstanceLike protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of items."""
        return int(self._profits.size)

    @property
    def capacity(self) -> float:
        """The weight limit K."""
        return self._capacity

    def profit(self, i: int) -> float:
        """Profit of item ``i`` (0-based, bounds-checked)."""
        self._check_index(i)
        return float(self._profits[i])

    def weight(self, i: int) -> float:
        """Weight of item ``i`` (0-based, bounds-checked)."""
        self._check_index(i)
        return float(self._weights[i])

    # ------------------------------------------------------------------
    # Bulk accessors (solver-facing; the LCA never uses these)
    # ------------------------------------------------------------------
    @property
    def profits(self) -> np.ndarray:
        """Read-only profit array."""
        return self._profits

    @property
    def weights(self) -> np.ndarray:
        """Read-only weight array."""
        return self._weights

    def item(self, i: int) -> Item:
        """Item ``i`` as an :class:`Item` value object."""
        return Item(self.profit(i), self.weight(i))

    def items(self) -> list[Item]:
        """All items, in index order."""
        return [Item(float(p), float(w)) for p, w in zip(self._profits, self._weights)]

    def efficiency(self, i: int) -> float:
        """Efficiency ratio ``p_i / w_i`` of item ``i``."""
        self._check_index(i)
        return efficiency(float(self._profits[i]), float(self._weights[i]))

    def efficiencies(self) -> np.ndarray:
        """Vector of all efficiency ratios (inf for free profitable items)."""
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            eff = np.where(
                self._weights > 0,
                self._profits / np.where(self._weights > 0, self._weights, 1.0),
                np.where(self._profits > 0, np.inf, 0.0),
            )
        return eff

    @property
    def total_profit(self) -> float:
        """Sum of all profits (1.0 for normalized instances)."""
        return float(self._profits.sum())

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return float(self._weights.sum())

    @property
    def is_normalized(self) -> bool:
        """True when total profit is 1 up to floating-point slack."""
        return math.isclose(self.total_profit, 1.0, rel_tol=0, abs_tol=1e-9)

    # ------------------------------------------------------------------
    # Solution predicates
    # ------------------------------------------------------------------
    def profit_of(self, indices: Iterable[int]) -> float:
        """Total profit of the item set ``indices``."""
        idx = self._as_index_array(indices)
        return float(self._profits[idx].sum())

    def weight_of(self, indices: Iterable[int]) -> float:
        """Total weight of the item set ``indices``."""
        idx = self._as_index_array(indices)
        return float(self._weights[idx].sum())

    def is_feasible(self, indices: Iterable[int], *, tol: float = 1e-9) -> bool:
        """True iff the item set fits in the knapsack (within ``tol``)."""
        return self.weight_of(indices) <= self._capacity + tol

    def is_maximal(self, indices: Iterable[int], *, tol: float = 1e-9) -> bool:
        """True iff the set is feasible and no absent item can be added.

        This is the relaxation Theorem 3.4 studies: maximality regardless
        of profit.
        """
        chosen = set(self._as_index_array(indices).tolist())
        remaining = self._capacity + tol - self.weight_of(chosen)
        if remaining < -2 * tol:
            return False
        for i in range(self.n):
            if i not in chosen and self._weights[i] <= remaining:
                return False
        return True

    def solution_stats(self, indices: Iterable[int]) -> "SolutionStats":
        """Bundle profit/weight/feasibility of a candidate solution."""
        idx = sorted(set(self._as_index_array(indices).tolist()))
        return SolutionStats(
            size=len(idx),
            profit=self.profit_of(idx),
            weight=self.weight_of(idx),
            feasible=self.is_feasible(idx),
        )

    # ------------------------------------------------------------------
    # Validation / serialization / dunder plumbing
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` on any structural violation."""
        if self._profits.size == 0:
            raise InvalidInstanceError("an instance must contain at least one item")
        if self._capacity < 0 or not math.isfinite(self._capacity):
            raise InvalidInstanceError(f"capacity must be finite and >= 0, got {self._capacity}")
        if not np.all(np.isfinite(self._profits)) or np.any(self._profits < 0):
            raise InvalidInstanceError("profits must be finite and non-negative")
        if not np.all(np.isfinite(self._weights)) or np.any(self._weights < 0):
            raise InvalidInstanceError("weights must be finite and non-negative")
        heaviest = float(self._weights.max())
        if heaviest > self._capacity + 1e-9:
            raise InvalidInstanceError(
                f"every weight must be at most the capacity K={self._capacity} "
                f"(Definition 2.2); found weight {heaviest}"
            )

    def to_dict(self) -> dict:
        """JSON-safe dict round-trippable via :meth:`from_dict`."""
        return {
            "profits": self._profits.tolist(),
            "weights": self._weights.tolist(),
            "capacity": self._capacity,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def _check_index(self, i: int) -> None:
        if not isinstance(i, (int, np.integer)):
            raise InvalidInstanceError(f"item index must be an integer, got {type(i).__name__}")
        if not 0 <= i < self.n:
            raise InvalidInstanceError(f"item index {i} out of range [0, {self.n})")

    def _as_index_array(self, indices: Iterable[int]) -> np.ndarray:
        # Solutions are *sets*: duplicates collapse (an item cannot be
        # packed twice in 0/1 knapsack), so profit_of([i, i]) == profit(i).
        idx = np.unique(np.asarray(list(indices), dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise InvalidInstanceError("solution contains out-of-range item indices")
        return idx

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnapsackInstance):
            return NotImplemented
        return (
            self._capacity == other._capacity
            and np.array_equal(self._profits, other._profits)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash((self._capacity, self._profits.tobytes(), self._weights.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KnapsackInstance(n={self.n}, K={self._capacity:.6g}, total_profit={self.total_profit:.6g})"


class SolutionStats:
    """Profit/weight/feasibility summary of a candidate solution set."""

    __slots__ = ("size", "profit", "weight", "feasible")

    def __init__(self, size: int, profit: float, weight: float, feasible: bool) -> None:
        self.size = size
        self.profit = profit
        self.weight = weight
        self.feasible = feasible

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolutionStats(size={self.size}, profit={self.profit:.6g}, "
            f"weight={self.weight:.6g}, feasible={self.feasible})"
        )
