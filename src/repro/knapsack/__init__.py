"""Knapsack substrate: items, instances, generators, solvers, verification.

This package is the classical (non-local) half of the reproduction: the
problem model of Section 2, the workload generators the evaluation runs
on, and the reference solvers the LCA's answers are audited against.
"""

from .generators import FAMILIES, generate
from .instance import InstanceLike, KnapsackInstance, SolutionStats
from .io import (
    BenchmarkInstance,
    format_benchmark_text,
    load_benchmark_file,
    parse_benchmark_text,
    save_benchmark_file,
)
from .items import Item, efficiency
from .preprocessing import ReducedInstance, preprocess
from .verify import (
    ApproximationReport,
    approximation_ratio,
    audit_solution,
    check_feasible,
    check_maximal,
    satisfies_alpha_beta,
)

__all__ = [
    "Item",
    "efficiency",
    "InstanceLike",
    "KnapsackInstance",
    "SolutionStats",
    "FAMILIES",
    "generate",
    "ApproximationReport",
    "approximation_ratio",
    "audit_solution",
    "check_feasible",
    "check_maximal",
    "satisfies_alpha_beta",
    "BenchmarkInstance",
    "parse_benchmark_text",
    "format_benchmark_text",
    "load_benchmark_file",
    "save_benchmark_file",
    "ReducedInstance",
    "preprocess",
]
