"""Item model for Knapsack instances.

The paper (Section 2) models an instance as a list of items
``a_i = (p_i, w_i)`` with non-negative profit ``p_i`` and weight
``w_i >= 0``, plus a capacity ``K``.  Items are value objects: hashable,
immutable, and ordered by *efficiency* ``p/w`` — the quantity the greedy
algorithm, the L/S/G partition and the EPS machinery all revolve around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Item", "efficiency", "efficiency_array"]


def efficiency(profit: float, weight: float) -> float:
    """Return the efficiency ratio ``profit / weight``.

    Zero-weight items are infinitely efficient (they are free to add;
    the greedy algorithm takes them first).  A zero-profit zero-weight
    item has efficiency 0 by convention: it can never affect a solution's
    value, so ranking it last is the conservative choice.
    """
    if weight < 0:
        raise ValueError(f"weight must be non-negative, got {weight}")
    if profit < 0:
        raise ValueError(f"profit must be non-negative, got {profit}")
    if weight == 0:
        return math.inf if profit > 0 else 0.0
    return profit / weight


def efficiency_array(profits, weights) -> np.ndarray:
    """Vectorized :func:`efficiency` over parallel profit/weight arrays.

    Element-wise identical to the scalar function, including the
    zero-weight conventions (``inf`` for positive profit, ``0.0`` for a
    zero-profit zero-weight item) — the batch decision rules rely on
    that exact agreement.
    """
    p = np.asarray(profits, dtype=float)
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if np.any(p < 0):
        raise ValueError("profits must be non-negative")
    out = np.empty(p.shape, dtype=float)
    zero = w == 0
    out[zero] = np.where(p[zero] > 0, math.inf, 0.0)
    out[~zero] = p[~zero] / w[~zero]
    return out


@dataclass(frozen=True, slots=True)
class Item:
    """A single Knapsack item ``(profit, weight)``.

    Instances are immutable so they can be freely shared between the
    many stateless LCA runs, used as dict keys, and deduplicated with
    ``set`` — Algorithm 2 line 2 removes duplicate sampled items, which
    maps directly onto set semantics here.
    """

    profit: float
    weight: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.profit) or self.profit < 0:
            raise ValueError(f"profit must be finite and >= 0, got {self.profit}")
        if not math.isfinite(self.weight) or self.weight < 0:
            raise ValueError(f"weight must be finite and >= 0, got {self.weight}")

    @property
    def efficiency(self) -> float:
        """Profit-to-weight ratio ``p/w`` (see :func:`efficiency`)."""
        return efficiency(self.profit, self.weight)

    def scaled(self, profit_factor: float = 1.0, weight_factor: float = 1.0) -> "Item":
        """Return a copy with profit and weight multiplied by the factors."""
        return Item(self.profit * profit_factor, self.weight * weight_factor)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(profit, weight)`` — the paper's ``(p, w)`` notation."""
        return (self.profit, self.weight)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(p={self.profit:.6g}, w={self.weight:.6g})"
