"""Solution verification utilities.

Every theorem in the paper is a statement about solution *properties*:
feasibility, maximality (Theorem 3.4), and (alpha, beta)-approximation
(Definition 2.1).  This module gives each property an executable checker
so tests and benches can audit algorithm outputs against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import InfeasibleSolutionError
from .instance import KnapsackInstance

__all__ = [
    "check_feasible",
    "check_maximal",
    "approximation_ratio",
    "satisfies_alpha_beta",
    "ApproximationReport",
    "audit_solution",
]


def check_feasible(instance: KnapsackInstance, indices: Iterable[int], *, strict: bool = False) -> bool:
    """True iff the set fits within capacity; optionally raise on failure."""
    ok = instance.is_feasible(indices)
    if strict and not ok:
        raise InfeasibleSolutionError(
            f"solution weight {instance.weight_of(indices):.6g} exceeds "
            f"capacity {instance.capacity:.6g}"
        )
    return ok


def check_maximal(instance: KnapsackInstance, indices: Iterable[int]) -> bool:
    """True iff the set is a *maximal* feasible solution (Theorem 3.4's notion)."""
    return instance.is_maximal(indices)


def approximation_ratio(
    instance: KnapsackInstance,
    indices: Iterable[int],
    optimal_value: float,
) -> float:
    """Return value(solution) / OPT, with the 0/0 case defined as 1."""
    value = instance.profit_of(indices)
    if optimal_value <= 0:
        return 1.0
    return value / optimal_value


def satisfies_alpha_beta(
    instance: KnapsackInstance,
    indices: Iterable[int],
    optimal_value: float,
    alpha: float,
    beta: float,
    *,
    tol: float = 1e-9,
) -> bool:
    """Definition 2.1 for maximization: value >= alpha * OPT - beta."""
    value = instance.profit_of(indices)
    return value >= alpha * optimal_value - beta - tol


@dataclass(frozen=True)
class ApproximationReport:
    """Audit of one solution against a known optimum."""

    value: float
    weight: float
    optimal_value: float
    feasible: bool
    maximal: bool
    ratio: float

    def satisfies(self, alpha: float, beta: float, *, tol: float = 1e-9) -> bool:
        """Definition 2.1 check against the recorded optimum."""
        return self.value >= alpha * self.optimal_value - beta - tol


def audit_solution(
    instance: KnapsackInstance,
    indices: Iterable[int],
    optimal_value: float,
) -> ApproximationReport:
    """Produce a full :class:`ApproximationReport` for a candidate solution."""
    idx = list(indices)
    value = instance.profit_of(idx)
    return ApproximationReport(
        value=value,
        weight=instance.weight_of(idx),
        optimal_value=optimal_value,
        feasible=instance.is_feasible(idx),
        maximal=instance.is_maximal(idx),
        ratio=approximation_ratio(instance, idx, optimal_value),
    )
