"""Synthetic Knapsack instance generators.

The paper evaluates nothing empirically, so the reproduction needs a
workload suite.  We provide the classic families from the knapsack
benchmarking literature (uncorrelated / correlated / subset-sum, after
Pisinger's generators), plus families purpose-built to exercise the
paper's machinery:

* :func:`planted_lsg` controls exactly how much profit mass sits in the
  large/small/garbage classes of the Section 4 partition for a target
  epsilon;
* :func:`efficiency_tiers` arranges small items in bands of near-equal
  efficiency, the regime the Equally Partitioning Sequence is built for;
* :func:`greedy_adversarial` makes the plain greedy prefix arbitrarily
  bad, so the "best of prefix vs. first-rejected item" rule in
  CONVERT-GREEDY is actually load-bearing;
* :func:`single_heavy` and :func:`all_items_unit_weight` mirror the
  structure of the lower-bound constructions in Section 3.

All generators are deterministic functions of their ``seed`` argument
and return *normalized* instances (total profit 1) unless stated.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import InvalidInstanceError
from .instance import KnapsackInstance

__all__ = [
    "uniform",
    "weakly_correlated",
    "strongly_correlated",
    "inverse_correlated",
    "subset_sum",
    "planted_lsg",
    "efficiency_tiers",
    "greedy_adversarial",
    "borderline_large",
    "single_heavy",
    "all_items_unit_weight",
    "zero_weight_padding",
    "FAMILIES",
    "generate",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _build(profits: np.ndarray, weights: np.ndarray, capacity: float) -> KnapsackInstance:
    # Clamp weights into [0, K]: the paper's model requires w_i <= K, and
    # random draws occasionally overshoot after capacity selection.
    # Both normalizations of Section 4 are applied: total profit 1 and
    # total weight 1 (capacity rescaled along).  A consequence worth
    # knowing when reading bench output: the profit-weighted harmonic
    # mean of the efficiencies of any doubly-normalized instance is
    # exactly 1, so "efficient" means "efficiency above ~1".
    weights = np.minimum(weights, capacity)
    return KnapsackInstance(
        profits, weights, capacity, normalize=True, normalize_weights=True
    )


def uniform(n: int, seed: int = 0, *, capacity_fraction: float = 0.35) -> KnapsackInstance:
    """Profits and weights i.i.d. uniform on (0, 1]; K a fraction of total weight.

    The classic "uncorrelated" family: easy for greedy, a good smoke-test
    workload.
    """
    _check_n(n)
    rng = _rng(seed)
    profits = rng.uniform(1e-6, 1.0, size=n)
    weights = rng.uniform(1e-6, 1.0, size=n)
    capacity = max(capacity_fraction * float(weights.sum()), float(weights.max()))
    return _build(profits, weights, capacity)


def weakly_correlated(n: int, seed: int = 0, *, spread: float = 0.1) -> KnapsackInstance:
    """Profit = weight +- uniform noise of relative size ``spread``.

    Correlated instances are the traditionally "hard for branch-and-bound"
    regime: efficiencies cluster near 1 so ordering carries little signal.
    """
    _check_n(n)
    rng = _rng(seed)
    weights = rng.uniform(0.1, 1.0, size=n)
    noise = rng.uniform(-spread, spread, size=n)
    profits = np.maximum(weights * (1.0 + noise), 1e-6)
    capacity = max(0.35 * float(weights.sum()), float(weights.max()))
    return _build(profits, weights, capacity)


def strongly_correlated(n: int, seed: int = 0, *, bonus: float = 0.1) -> KnapsackInstance:
    """Profit = weight + constant bonus: all efficiencies decrease with weight."""
    _check_n(n)
    rng = _rng(seed)
    weights = rng.uniform(0.1, 1.0, size=n)
    profits = weights + bonus
    capacity = max(0.35 * float(weights.sum()), float(weights.max()))
    return _build(profits, weights, capacity)


def inverse_correlated(n: int, seed: int = 0, *, bonus: float = 0.1) -> KnapsackInstance:
    """Weight = profit + constant bonus: light items are the efficient ones."""
    _check_n(n)
    rng = _rng(seed)
    profits = rng.uniform(0.1, 1.0, size=n)
    weights = profits + bonus
    capacity = max(0.35 * float(weights.sum()), float(weights.max()))
    return _build(profits, weights, capacity)


def subset_sum(n: int, seed: int = 0) -> KnapsackInstance:
    """Profit == weight for every item (value-independent packing).

    Every efficiency equals 1, which stress-tests tie-breaking in the
    greedy conversion and makes the EPS quantiles degenerate — a corner
    case Lemma 4.6's analysis has to survive.
    """
    _check_n(n)
    rng = _rng(seed)
    weights = rng.uniform(0.05, 1.0, size=n)
    profits = weights.copy()
    capacity = max(0.35 * float(weights.sum()), float(weights.max()))
    return _build(profits, weights, capacity)


def planted_lsg(
    n: int,
    seed: int = 0,
    *,
    epsilon: float = 0.1,
    large_mass: float = 0.25,
    garbage_weight: float = 0.1,
    capacity: float = 0.35,
) -> KnapsackInstance:
    """Plant a target split across the L/S/G partition, doubly normalized.

    The instance satisfies both of Section 4's normalizations *exactly*
    (total profit 1, total weight 1), so the paper's structural facts
    hold by construction — in particular ``p(G(I)) <= eps^2`` (garbage
    efficiency below eps^2 on at most unit weight).

    * ``large_mass`` of the profit sits on a few items of profit in
      ``(eps^2, 3 eps^2]`` (class L);
    * ``garbage_weight`` of the *weight* sits on items of efficiency in
      ``[0.1 eps^2, 0.6 eps^2)`` (class G — their profit is necessarily
      tiny);
    * the remaining profit is spread over many small items with
      efficiencies straddling 1 (class S).  Note a doubly-normalized
      instance forces the profit-weighted harmonic mean efficiency to
      be exactly 1, so "high-efficiency small items" means ~1, not
      ~eps^2.

    Requires ``n`` large enough that individual small profits fit under
    ``eps^2`` (roughly ``n >= 2 / eps^2``); raises otherwise.
    """
    _check_n(n)
    if not 0 < epsilon <= 0.25:
        raise InvalidInstanceError("epsilon must lie in (0, 0.25] for this family")
    if not 0 <= large_mass < 0.9:
        raise InvalidInstanceError("large_mass must lie in [0, 0.9)")
    if not 0 <= garbage_weight <= 0.5:
        raise InvalidInstanceError("garbage_weight must lie in [0, 0.5]")
    if not 0 < capacity <= 1:
        raise InvalidInstanceError("capacity must lie in (0, 1] (post-normalization)")
    rng = _rng(seed)
    eps_sq = epsilon * epsilon

    # --- Large items: profits in (eps^2, 3 eps^2], total large_mass.
    n_large = 0
    large_profits = np.empty(0)
    if large_mass > 0:
        n_large = max(1, min(n // 4, math.ceil(large_mass / (1.8 * eps_sq))))
        while n_large >= 1:
            large_profits = rng.uniform(1.1 * eps_sq, 3.0 * eps_sq, size=n_large)
            large_profits *= large_mass / large_profits.sum()
            if large_profits.min() > eps_sq or n_large == 1:
                break
            n_large -= 1
        if large_profits.min() <= eps_sq:
            raise InvalidInstanceError(
                f"cannot plant large_mass={large_mass} with epsilon={epsilon}: "
                "individual large profits would not exceed eps^2"
            )
    weight_large = min(0.2, 0.8 * capacity) if n_large else 0.0
    large_weights = rng.uniform(0.5, 1.5, size=n_large)
    if n_large:
        large_weights *= weight_large / large_weights.sum()

    # --- Garbage items: efficiency in [0.1, 0.6) * eps^2 on garbage_weight.
    n_garbage = min(n // 4, max(1, n // 10)) if garbage_weight > 0 else 0
    n_small = n - n_large - n_garbage
    if n_small <= 0:
        raise InvalidInstanceError("n too small for the requested class sizes")
    garbage_weights = rng.uniform(0.5, 1.5, size=n_garbage)
    if n_garbage:
        garbage_weights *= garbage_weight / garbage_weights.sum()
    garbage_eff = rng.uniform(0.1 * eps_sq, 0.6 * eps_sq, size=n_garbage)
    garbage_profits = garbage_eff * garbage_weights  # provably < eps^2 total

    # --- Small items: the rest of the profit, efficiencies straddling 1,
    # weights scaled so the grand total weight is exactly 1.
    small_mass = 1.0 - large_mass - float(garbage_profits.sum())
    small_profits = rng.uniform(0.5, 1.5, size=n_small)
    small_profits *= small_mass / small_profits.sum()
    if small_profits.max() > eps_sq:
        raise InvalidInstanceError(
            f"n={n} too small for epsilon={epsilon}: the largest small profit "
            f"({small_profits.max():.2g}) exceeds eps^2={eps_sq:.2g}; "
            f"use n >= ~{math.ceil(2 * small_mass / eps_sq)}"
        )
    raw_eff = np.exp(rng.uniform(math.log(0.3), math.log(3.0), size=n_small))
    raw_weights = small_profits / raw_eff
    weight_small = 1.0 - weight_large - garbage_weight
    small_weights = raw_weights * (weight_small / raw_weights.sum())
    # Realized small efficiencies are raw_eff * (sum raw / weight_small):
    # a uniform shift that keeps the class far above eps^2.

    profits = np.concatenate([large_profits, small_profits, garbage_profits])
    weights = np.concatenate([large_weights, small_weights, garbage_weights])
    perm = rng.permutation(profits.size)
    profits, weights = profits[perm], weights[perm]
    weights = np.minimum(weights, capacity)
    return KnapsackInstance(
        profits, weights, capacity, normalize=True, normalize_weights=True
    )


def efficiency_tiers(
    n: int,
    seed: int = 0,
    *,
    tiers: int = 8,
    tier_ratio: float = 0.7,
) -> KnapsackInstance:
    """Small items grouped into geometric efficiency tiers.

    Tier k has efficiency ~ ``tier_ratio**k``; profit mass is split evenly
    over tiers, so the true equally-partitioning quantiles sit exactly at
    the tier boundaries.  Useful for testing that rQuantile recovers the
    tier structure.
    """
    _check_n(n)
    if tiers < 1:
        raise InvalidInstanceError("tiers must be >= 1")
    if not 0 < tier_ratio < 1:
        raise InvalidInstanceError("tier_ratio must lie in (0, 1)")
    rng = _rng(seed)
    per_tier = max(1, n // tiers)
    profits_parts = []
    shape_parts = []  # efficiency shape r^k * jitter, rescaled below
    for k in range(tiers):
        count = per_tier if k < tiers - 1 else n - per_tier * (tiers - 1)
        if count <= 0:
            continue
        shape = tier_ratio**k * rng.uniform(0.95, 1.05, size=count)
        p = rng.uniform(0.5, 1.0, size=count)
        p *= (1.0 / tiers) / p.sum()
        profits_parts.append(p)
        shape_parts.append(shape)
    profits = np.concatenate(profits_parts)
    shape = np.concatenate(shape_parts)
    # Exact double normalization: with efficiencies e = c * shape and
    # weights w = p / e, total weight is (1/c) * sum(p / shape); choosing
    # c = sum(p / shape) makes the total weight exactly 1.
    c = float(np.sum(profits / shape))
    weights = profits / (c * shape)
    capacity = max(0.4, float(weights.max()))
    return KnapsackInstance(
        profits, weights, capacity, normalize=True, normalize_weights=False
    )


def greedy_adversarial(n: int, seed: int = 0) -> KnapsackInstance:
    """Make the plain greedy-by-efficiency prefix nearly worthless.

    One item has weight ~K and huge profit but slightly lower efficiency
    than a cloud of feather-light items whose *total* profit is tiny.
    Greedy fills up on feathers; the 1/2-approximation rule must fall
    back to the single heavy item.  This family certifies that the
    "singleton branch" of CONVERT-GREEDY (line 12) is exercised.
    """
    _check_n(n)
    if n < 2:
        raise InvalidInstanceError("greedy_adversarial needs n >= 2")
    rng = _rng(seed)
    n_feathers = n - 1
    feather_eff = 2.0
    feather_profits = rng.uniform(0.5, 1.0, size=n_feathers)
    feather_profits *= 0.05 / feather_profits.sum()  # tiny total profit
    feather_weights = feather_profits / feather_eff
    capacity = 1.0
    heavy_profit = 0.95
    heavy_weight = capacity  # efficiency 0.95 < feather efficiency
    profits = np.concatenate([feather_profits, [heavy_profit]])
    weights = np.concatenate([feather_weights, [heavy_weight]])
    return KnapsackInstance(profits, weights, capacity, normalize=True)


def single_heavy(n: int, seed: int = 0, *, planted_index: int | None = None) -> KnapsackInstance:
    """All items have weight K; exactly one has high profit.

    This is the *shape* of the Theorem 3.2/3.3 reduction instances (any
    feasible solution is a singleton), exposed as a generator so tests
    and benches can exercise solvers on it directly.  ``planted_index``
    fixes where the profitable item sits (default: random).
    """
    _check_n(n)
    rng = _rng(seed)
    idx = int(rng.integers(0, n)) if planted_index is None else planted_index
    if not 0 <= idx < n:
        raise InvalidInstanceError("planted_index out of range")
    profits = np.full(n, 1e-4)
    profits[idx] = 1.0
    weights = np.ones(n)
    return KnapsackInstance(profits, weights, capacity=1.0, normalize=True)


def all_items_unit_weight(n: int, seed: int = 0, *, capacity_items: int | None = None) -> KnapsackInstance:
    """Every item weighs 1; capacity admits ``capacity_items`` of them."""
    _check_n(n)
    rng = _rng(seed)
    k = capacity_items if capacity_items is not None else max(1, n // 10)
    if not 1 <= k <= n:
        raise InvalidInstanceError("capacity_items must lie in [1, n]")
    profits = rng.uniform(0.01, 1.0, size=n)
    weights = np.ones(n)
    return KnapsackInstance(profits, weights, capacity=float(k), normalize=True)


def borderline_large(
    n: int,
    seed: int = 0,
    *,
    epsilon: float = 0.1,
    n_borderline: int = 8,
    window: float = 0.2,
) -> KnapsackInstance:
    """Items whose profits straddle the eps^2 large/small boundary.

    ``n_borderline`` items get profits spread across
    ``[(1 - window) eps^2, (1 + window) eps^2]`` — half a hair below the
    partition threshold, half a hair above — with the rest of the
    profit on ordinary small items.  This is the adversarial family for
    *large-item detection*: under the paper's coupon rule, a threshold
    item's membership in L(I~) can flip between runs on sampling luck;
    the reproducible heavy-hitters mode (ablation E13) decides each
    borderline item once, by the shared randomized cutoff.
    """
    _check_n(n)
    if not 0 < epsilon <= 0.25:
        raise InvalidInstanceError("epsilon must lie in (0, 0.25]")
    if not 1 <= n_borderline <= n // 2:
        raise InvalidInstanceError("n_borderline must lie in [1, n/2]")
    if not 0 < window < 1:
        raise InvalidInstanceError("window must lie in (0, 1)")
    rng = _rng(seed)
    eps_sq = epsilon * epsilon
    border_profits = np.linspace(
        (1 - window) * eps_sq, (1 + window) * eps_sq, n_borderline
    )
    n_small = n - n_borderline
    small_mass = 1.0 - float(border_profits.sum())
    if small_mass <= 0:
        raise InvalidInstanceError("too many borderline items for this epsilon")
    small_profits = rng.uniform(0.5, 1.5, size=n_small)
    small_profits *= small_mass / small_profits.sum()
    if small_profits.max() > eps_sq:
        raise InvalidInstanceError(
            f"n={n} too small for epsilon={epsilon} in this family"
        )
    profits = np.concatenate([border_profits, small_profits])
    # Efficiencies straddling 1 (see planted_lsg), weights scaled to 1.
    raw_eff = np.exp(rng.uniform(math.log(0.3), math.log(3.0), size=n))
    weights = profits / raw_eff
    weights *= 1.0 / weights.sum()
    capacity = 0.35
    weights = np.minimum(weights, capacity)
    return KnapsackInstance(
        profits, weights, capacity, normalize=True, normalize_weights=True
    )


def zero_weight_padding(n: int, seed: int = 0, *, n_heavy: int = 2) -> KnapsackInstance:
    """Mostly zero-weight items plus a few heavy ones.

    The structural skeleton of the Theorem 3.4 hard distribution: finding
    the non-zero-weight items is a needle-in-a-haystack search.  (The
    exact two-item hard distribution lives in
    :mod:`repro.lowerbounds.maximal_hard`; this generator is the generic
    solver-facing variant with profits attached.)
    """
    _check_n(n)
    if not 0 <= n_heavy <= n:
        raise InvalidInstanceError("n_heavy must lie in [0, n]")
    rng = _rng(seed)
    profits = rng.uniform(0.01, 1.0, size=n)
    weights = np.zeros(n)
    heavy = rng.choice(n, size=n_heavy, replace=False)
    weights[heavy] = rng.uniform(0.25, 0.75, size=n_heavy)
    return KnapsackInstance(profits, weights, capacity=1.0, normalize=True)


def _check_n(n: int) -> None:
    if n < 1:
        raise InvalidInstanceError(f"n must be >= 1, got {n}")


#: Registry of named families for the CLI and the experiment harness.
FAMILIES: dict[str, Callable[..., KnapsackInstance]] = {
    "uniform": uniform,
    "weakly_correlated": weakly_correlated,
    "strongly_correlated": strongly_correlated,
    "inverse_correlated": inverse_correlated,
    "subset_sum": subset_sum,
    "planted_lsg": planted_lsg,
    "efficiency_tiers": efficiency_tiers,
    "greedy_adversarial": greedy_adversarial,
    "borderline_large": borderline_large,
    "single_heavy": single_heavy,
    "all_items_unit_weight": all_items_unit_weight,
    "zero_weight_padding": zero_weight_padding,
}


def generate(family: str, n: int, seed: int = 0, **kwargs) -> KnapsackInstance:
    """Generate an instance from a named family (see :data:`FAMILIES`)."""
    try:
        factory = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise InvalidInstanceError(f"unknown family {family!r}; known: {known}") from None
    return factory(n, seed, **kwargs)
