"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """A Knapsack instance violates a structural invariant.

    Raised, for example, when an item has negative profit or weight, when
    an item's weight exceeds the knapsack capacity (the paper's model in
    Definition 2.2 requires every individual weight to be at most K), or
    when profits fail the total-profit-one normalization.
    """


class NormalizationError(InvalidInstanceError):
    """Profits (or weights) could not be normalized as required."""


class QueryBudgetExceededError(ReproError):
    """An algorithm exceeded its allotted number of oracle queries.

    The query budget is the central resource of the LCA model: the paper's
    lower bounds are statements about how many oracle queries *any* LCA
    must spend per output query.  Budgeted oracles raise this error when
    the budget is exhausted, which the lower-bound harness uses to cut off
    strategies that would read too much of the input.
    """

    def __init__(self, budget: int, attempted: int) -> None:
        self.budget = budget
        self.attempted = attempted
        super().__init__(
            f"query budget exhausted: budget={budget}, attempted query #{attempted}"
        )


class OracleError(ReproError):
    """Malformed interaction with an instance oracle (e.g. bad index)."""


class SolverError(ReproError):
    """An exact or approximate solver failed or was misconfigured."""


class InfeasibleSolutionError(SolverError):
    """A produced solution violates the knapsack capacity constraint."""


class ReproducibilityError(ReproError):
    """A reproducible-algorithm invariant was violated.

    Raised for misuse of :mod:`repro.reproducible` (e.g. empty sample,
    parameters outside their documented ranges), *not* for the stochastic
    event of two runs disagreeing — that event is the ρ failure
    probability and is reported by the consistency checkers, not raised.
    """


class DomainError(ReproducibilityError):
    """A value fell outside the finite domain used by rMedian/rQuantile."""


class ConsistencyViolation(ReproError):
    """Two runs of an LCA that share a seed answered inconsistently.

    Carried by the audit reports in :mod:`repro.lca.consistency`; raised
    only when the caller asked for strict enforcement.
    """

    def __init__(self, query: int, answers: tuple) -> None:
        self.query = query
        self.answers = answers
        super().__init__(
            f"inconsistent LCA answers for query {query}: observed {answers}"
        )


class ExperimentError(ReproError):
    """An experiment/benchmark harness was misconfigured."""
