"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(ReproError):
    """A Knapsack instance violates a structural invariant.

    Raised, for example, when an item has negative profit or weight, when
    an item's weight exceeds the knapsack capacity (the paper's model in
    Definition 2.2 requires every individual weight to be at most K), or
    when profits fail the total-profit-one normalization.
    """


class NormalizationError(InvalidInstanceError):
    """Profits (or weights) could not be normalized as required."""


class QueryBudgetExceededError(ReproError):
    """An algorithm exceeded its allotted number of oracle queries.

    The query budget is the central resource of the LCA model: the paper's
    lower bounds are statements about how many oracle queries *any* LCA
    must spend per output query.  Budgeted oracles raise this error when
    the budget is exhausted, which the lower-bound harness uses to cut off
    strategies that would read too much of the input.
    """

    def __init__(self, budget: int, attempted: int) -> None:
        self.budget = budget
        self.attempted = attempted
        super().__init__(
            f"query budget exhausted: budget={budget}, attempted query #{attempted}"
        )


class OracleError(ReproError):
    """Malformed interaction with an instance oracle (e.g. bad index)."""


class SolverError(ReproError):
    """An exact or approximate solver failed or was misconfigured."""


class InfeasibleSolutionError(SolverError):
    """A produced solution violates the knapsack capacity constraint."""


class ReproducibilityError(ReproError):
    """A reproducible-algorithm invariant was violated.

    Raised for misuse of :mod:`repro.reproducible` (e.g. empty sample,
    parameters outside their documented ranges), *not* for the stochastic
    event of two runs disagreeing — that event is the ρ failure
    probability and is reported by the consistency checkers, not raised.
    """


class DomainError(ReproducibilityError):
    """A value fell outside the finite domain used by rMedian/rQuantile."""


class ConsistencyViolation(ReproError):
    """Two runs of an LCA that share a seed answered inconsistently.

    Carried by the audit reports in :mod:`repro.lca.consistency`; raised
    only when the caller asked for strict enforcement.
    """

    def __init__(self, query: int, answers: tuple) -> None:
        self.query = query
        self.answers = answers
        super().__init__(
            f"inconsistent LCA answers for query {query}: observed {answers}"
        )


class ExperimentError(ReproError):
    """An experiment/benchmark harness was misconfigured."""


class FaultInjectionError(ReproError):
    """An injected (or injected-and-unrecovered) fault surfaced to the caller.

    The fault-injection layer (:mod:`repro.faults`) models oracle access
    as an unreliable, costed resource: probes can fail, time out, or come
    back corrupted.  Every concrete fault error carries a machine-readable
    ``reason_code`` so degraded answers and chaos reports can account for
    failures without parsing messages.
    """

    reason_code = "fault-injected"


class ProbeFailureError(FaultInjectionError):
    """A charged probe's response was lost (transient; retryable).

    The probe *was* charged against the budget before failing — the model
    is "the query reached the oracle, the answer did not come back", so
    retries pay again.  This is what keeps the resource accounting honest
    with respect to Theorems 3.2-3.4: faults never grant free queries.
    """

    reason_code = "probe-failure"

    def __init__(self, probe: str, attempt: int = 1) -> None:
        self.probe = probe
        self.attempt = attempt
        super().__init__(f"injected failure on probe {probe!r} (attempt {attempt})")


class ProbeTimeoutError(FaultInjectionError):
    """A probe's injected latency exceeded the per-probe timeout (transient)."""

    reason_code = "probe-timeout"

    def __init__(self, probe: str, latency_s: float, timeout_s: float) -> None:
        self.probe = probe
        self.latency_s = latency_s
        self.timeout_s = timeout_s
        super().__init__(
            f"probe {probe!r} took {latency_s:.4g}s (injected), timeout {timeout_s:.4g}s"
        )


class CorruptProbeError(FaultInjectionError):
    """A delivered probe failed the plausibility audit (transient; retryable).

    Raised by :class:`~repro.faults.audit.ProbeAuditor` when a delivered
    item or block is implausible — non-finite or negative profit/weight,
    or a finite nonzero efficiency strictly outside the reproducible
    domain's range.  The probe *was* charged (charge-then-lose, like
    every fault), and the answer is discarded rather than trusted: a
    retry re-probes and re-pays, turning silent corruption into a
    recoverable fault instead of a wrong answer.
    """

    reason_code = "corrupt-probe"

    def __init__(self, probe: str, detail: str = "") -> None:
        self.probe = probe
        self.detail = detail
        super().__init__(
            f"implausible response on probe {probe!r}"
            + (f": {detail}" if detail else "")
        )


class RetriesExhaustedError(FaultInjectionError):
    """A transient fault persisted through every allowed retry.

    ``last_error`` is the final transient failure; ``attempts`` counts
    every probe attempt made (initial try plus retries), all of which
    were charged against the budget.
    """

    reason_code = "retries-exhausted"

    def __init__(self, probe: str, attempts: int, last_error: Exception) -> None:
        self.probe = probe
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"probe {probe!r} failed {attempts} attempt(s); last error: {last_error}"
        )


class ShardFailureError(FaultInjectionError):
    """A parallel shard (process-pool worker) died and exhausted its requeues."""

    reason_code = "shard-failure"

    def __init__(self, shard: int, attempts: int, last_error: Exception) -> None:
        self.shard = shard
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"shard {shard} failed {attempts} attempt(s); last error: {last_error!r}"
        )


class DeadlineExceededError(FaultInjectionError):
    """A query's deadline passed before (or at) dispatch.

    Raised by the overload governor's admission gate: serving an answer
    nobody is waiting for wastes capacity the queue behind it needs, so
    already-doomed work is shed *before* it touches the oracle.  No
    probe is charged — the query never ran — which keeps shedding
    honest with respect to Theorems 3.2-3.4: a deadline miss is an
    availability loss, never a free query.
    """

    reason_code = "deadline-exceeded"

    def __init__(self, deadline_s: float, now_s: float) -> None:
        self.deadline_s = deadline_s
        self.now_s = now_s
        super().__init__(
            f"deadline {deadline_s:.6g}s passed before dispatch (now {now_s:.6g}s)"
        )


class CircuitOpenError(FaultInjectionError):
    """A circuit breaker refused a probe while open (fail-fast).

    Raised *before* the probe executes, so nothing new is charged; the
    probes whose failures tripped the breaker stay charged (tripping
    never un-charges).  Not transient — retrying into an open breaker
    would defeat its purpose — so the degradation ladder absorbs it.
    """

    reason_code = "breaker-open"

    def __init__(self, resource: str, until_s: float) -> None:
        self.resource = resource
        self.until_s = until_s
        super().__init__(
            f"circuit open for {resource!r} until t={until_s:.6g}s (fail-fast)"
        )


class WatchdogTimeoutError(FaultInjectionError):
    """A process-shard future blew its watchdog deadline (stuck shard).

    The shard may still be running (wedged, not dead); the watchdog
    treats it exactly like a killed worker — the attempt is abandoned
    and the shard requeues through the existing worker-death path, its
    already-charged probes staying charged.
    """

    reason_code = "watchdog-timeout"

    def __init__(self, shard: int, deadline_s: float) -> None:
        self.shard = shard
        self.deadline_s = deadline_s
        super().__init__(
            f"shard {shard} exceeded its {deadline_s:.4g}s watchdog deadline"
        )


class SharedMemoryError(ReproError):
    """A shared-memory instance segment operation failed.

    The shared-memory tier (:mod:`repro.knapsack.shm`) hands out
    :class:`~repro.knapsack.shm.SharedInstanceHandle` tokens whose
    validity the owner controls; every concrete failure carries a
    machine-readable ``reason_code`` mirroring the fault hierarchy, so
    degraded paths and obs counters can account for segment problems
    without parsing messages.
    """

    reason_code = "shm-error"


class SegmentMissingError(SharedMemoryError):
    """An attach targeted a segment that no longer exists.

    Raised when a handle outlives its segment — typically an
    attach-after-unlink: the owning store was closed (or its process
    exited) before a worker attached.  The attach fails *before* any
    probe is billed; callers holding a stale handle must obtain a fresh
    one from a live store.
    """

    reason_code = "segment-missing"

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"shared-memory segment {name!r} does not exist (unlinked?)")


class DigestMismatchError(SharedMemoryError):
    """An attached segment's content digest does not match its handle.

    The handle pins the instance identity (n, capacity and a content
    digest over the profit/weight columns); a mismatch means the segment
    was recycled or corrupted.  Verification happens at attach time,
    before any query is billed, so a poisoned segment can never silently
    serve answers for the wrong instance.
    """

    reason_code = "digest-mismatch"

    def __init__(self, name: str, expected: str, actual: str) -> None:
        self.name = name
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"segment {name!r} digest mismatch: handle pinned {expected!r}, "
            f"segment holds {actual!r}"
        )
