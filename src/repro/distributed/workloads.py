"""Query workload generators for the distributed simulation.

Which items clients ask about shapes everything the deployment
measures: repetition density determines how often the consistency audit
actually gets to compare answers, and arrival burstiness drives
queueing.  Three classical shapes:

* :func:`uniform_queries` — every item equally likely (sparse repeats);
* :func:`zipf_queries` — heavy-tailed popularity (hot items repeat a
  lot, the audit-friendly and cache-realistic regime);
* :func:`hotset_queries` — an explicit hot set absorbing a fixed
  fraction of traffic (the simulator's historical default, exposed).

Plus :func:`bursty_arrivals`, an arrival-time process (Markov-modulated
Poisson with ON/OFF phases) for stress-testing queue depth beyond the
plain Poisson stream built into :class:`ClusterSimulation`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExperimentError

__all__ = [
    "uniform_queries",
    "zipf_queries",
    "hotset_queries",
    "bursty_arrivals",
]


def uniform_queries(n_items: int, count: int, rng: np.random.Generator) -> list[int]:
    """``count`` queries over ``n_items``, uniformly at random."""
    _check(n_items, count)
    return [int(i) for i in rng.integers(0, n_items, size=count)]


def zipf_queries(
    n_items: int,
    count: int,
    rng: np.random.Generator,
    *,
    exponent: float = 1.1,
) -> list[int]:
    """Zipf-popular queries: item rank r gets probability ~ r^-exponent.

    Ranks are mapped to item indices by a fixed permutation derived from
    the rng, so the hot items are not always the low indices.
    """
    _check(n_items, count)
    if exponent <= 0:
        raise ExperimentError(f"exponent must be > 0, got {exponent}")
    ranks = np.arange(1, n_items + 1, dtype=float)
    probs = ranks**-exponent
    probs /= probs.sum()
    perm = rng.permutation(n_items)
    draws = rng.choice(n_items, size=count, p=probs)
    return [int(perm[d]) for d in draws]


def hotset_queries(
    n_items: int,
    count: int,
    rng: np.random.Generator,
    *,
    hot_items: int = 10,
    hot_fraction: float = 0.5,
) -> list[int]:
    """A fixed hot set absorbs ``hot_fraction`` of the traffic."""
    _check(n_items, count)
    if not 0 <= hot_fraction <= 1:
        raise ExperimentError("hot_fraction must lie in [0, 1]")
    k = max(1, min(hot_items, n_items))
    hot = rng.choice(n_items, size=k, replace=False)
    out = []
    for _ in range(count):
        if rng.random() < hot_fraction:
            out.append(int(rng.choice(hot)))
        else:
            out.append(int(rng.integers(n_items)))
    return out


def bursty_arrivals(
    count: int,
    rng: np.random.Generator,
    *,
    rate_on: float = 100.0,
    rate_off: float = 5.0,
    mean_phase: float = 0.5,
) -> list[float]:
    """Arrival times from an ON/OFF modulated Poisson process.

    Alternates exponential-length phases; inter-arrival times are
    exponential at ``rate_on`` during ON phases and ``rate_off`` during
    OFF phases.  Returns ``count`` strictly increasing timestamps.
    """
    if count < 1:
        raise ExperimentError("count must be >= 1")
    if rate_on <= 0 or rate_off <= 0 or mean_phase <= 0:
        raise ExperimentError("rates and mean_phase must be positive")
    times: list[float] = []
    now = 0.0
    on = True
    phase_end = float(rng.exponential(mean_phase))
    while len(times) < count:
        rate = rate_on if on else rate_off
        now += float(rng.exponential(1.0 / rate))
        while now >= phase_end:
            on = not on
            phase_end += float(rng.exponential(mean_phase))
        times.append(now)
    return times


def _check(n_items: int, count: int) -> None:
    if n_items < 1:
        raise ExperimentError(f"n_items must be >= 1, got {n_items}")
    if count < 1:
        raise ExperimentError(f"count must be >= 1, got {count}")
