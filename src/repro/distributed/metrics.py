"""Post-hoc metrics over a cluster run's query records.

:class:`ClusterReport` carries the raw records; these helpers derive
the standard service-system metrics a deployment dashboard would show —
utilization, queueing delay decomposition, fairness of the load across
workers, and repeat-coverage of the consistency audit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from .cluster import ClusterReport, QueryRecord

__all__ = ["ServiceMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ServiceMetrics:
    """Derived service metrics for one simulated deployment.

    ``degenerate`` flags a zero-duration run (every record arrived and
    finished at the same instant — e.g. zero service cost and zero
    network latency).  Rate metrics (throughput, utilization) are
    reported as 0.0 for such runs rather than dividing by a clamped
    epsilon and claiming absurd rates; check the flag before reading
    them.
    """

    makespan: float  # first arrival -> last completion
    throughput: float  # completed queries per simulated second
    mean_service_time: float
    mean_queueing_delay: float  # started - arrived (incl. network)
    p99_queueing_delay: float  # tail of the same decomposition
    utilization: float  # busy worker-seconds / (workers * makespan)
    load_imbalance: float  # max/mean per-worker load (1.0 = perfect)
    repeat_coverage: float  # fraction of distinct items queried >= twice
    retry_rate: float  # crash retries per completed query
    degenerate: bool = False  # zero-duration run; rates forced to 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (field name -> value), for the obs exporters."""
        return {
            "makespan": self.makespan,
            "throughput": self.throughput,
            "mean_service_time": self.mean_service_time,
            "mean_queueing_delay": self.mean_queueing_delay,
            "p99_queueing_delay": self.p99_queueing_delay,
            "utilization": self.utilization,
            "load_imbalance": self.load_imbalance,
            "repeat_coverage": self.repeat_coverage,
            "retry_rate": self.retry_rate,
            "degenerate": self.degenerate,
        }


def compute_metrics(report: ClusterReport, *, workers: int) -> ServiceMetrics:
    """Derive :class:`ServiceMetrics` from a :class:`ClusterReport`."""
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    records: tuple[QueryRecord, ...] = report.records
    if not records:
        raise ExperimentError("cannot compute metrics for an empty run")
    arrived = np.array([r.arrived for r in records])
    started = np.array([r.started for r in records])
    finished = np.array([r.finished for r in records])
    service = finished - started
    queueing = started - arrived
    makespan = float(finished.max() - arrived.min())
    degenerate = makespan <= 0.0

    per_item = Counter(r.item for r in records)
    repeated = sum(1 for c in per_item.values() if c >= 2)

    loads = np.array(report.per_worker_load, dtype=float)
    mean_load = float(loads.mean()) if loads.size else 0.0

    return ServiceMetrics(
        makespan=makespan,
        throughput=0.0 if degenerate else len(records) / makespan,
        mean_service_time=float(service.mean()),
        mean_queueing_delay=float(queueing.mean()),
        p99_queueing_delay=float(np.quantile(queueing, 0.99)),
        utilization=0.0 if degenerate else float(service.sum()) / (workers * makespan),
        load_imbalance=float(loads.max()) / mean_load if mean_load > 0 else float("inf"),
        repeat_coverage=repeated / max(1, len(per_item)),
        retry_rate=report.total_crashes / len(records),
        degenerate=degenerate,
    )
