"""Post-hoc metrics over a cluster run's query records.

:class:`ClusterReport` carries the raw records; these helpers derive
the standard service-system metrics a deployment dashboard would show —
utilization, queueing delay decomposition, fairness of the load across
workers, and repeat-coverage of the consistency audit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from .cluster import ClusterReport, QueryRecord

__all__ = ["ServiceMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ServiceMetrics:
    """Derived service metrics for one simulated deployment."""

    makespan: float  # first arrival -> last completion
    throughput: float  # completed queries per simulated second
    mean_service_time: float
    mean_queueing_delay: float  # started - arrived (incl. network)
    utilization: float  # busy worker-seconds / (workers * makespan)
    load_imbalance: float  # max/mean per-worker load (1.0 = perfect)
    repeat_coverage: float  # fraction of distinct items queried >= twice
    retry_rate: float  # crash retries per completed query


def compute_metrics(report: ClusterReport, *, workers: int) -> ServiceMetrics:
    """Derive :class:`ServiceMetrics` from a :class:`ClusterReport`."""
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    records: tuple[QueryRecord, ...] = report.records
    if not records:
        raise ExperimentError("cannot compute metrics for an empty run")
    arrived = np.array([r.arrived for r in records])
    started = np.array([r.started for r in records])
    finished = np.array([r.finished for r in records])
    service = finished - started
    makespan = float(finished.max() - arrived.min())
    makespan = max(makespan, 1e-12)

    per_item: dict[int, int] = {}
    for r in records:
        per_item[r.item] = per_item.get(r.item, 0) + 1
    repeated = sum(1 for c in per_item.values() if c >= 2)

    loads = np.array(report.per_worker_load, dtype=float)
    mean_load = float(loads.mean()) if loads.size else 0.0

    return ServiceMetrics(
        makespan=makespan,
        throughput=len(records) / makespan,
        mean_service_time=float(service.mean()),
        mean_queueing_delay=float((started - arrived).mean()),
        utilization=float(service.sum()) / (workers * makespan),
        load_imbalance=float(loads.max()) / mean_load if mean_load > 0 else float("inf"),
        repeat_coverage=repeated / max(1, len(per_item)),
        retry_rate=report.total_crashes / len(records),
    )
