"""Minimal deterministic discrete-event engine.

Just enough simulation machinery for :mod:`repro.distributed.cluster`:
a time-ordered event queue with stable tie-breaking (insertion
sequence), so identical configurations replay identically — the same
determinism discipline the rest of the library follows.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ExperimentError

__all__ = ["Event", "EventQueue", "Clock"]


@dataclass(order=True)
class Event:
    """One scheduled action; ordering is (time, seq)."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class Clock:
    """Monotone simulation clock."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward (never backward)."""
        if t < self._now - 1e-12:
            raise ExperimentError(f"clock cannot go backward: {t} < {self._now}")
        self._now = max(self._now, t)


class EventQueue:
    """Stable priority queue of :class:`Event` driving a :class:`Clock`."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.clock = Clock()

    def schedule(self, delay: float, action: Callable[[], Any], *, label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ExperimentError(f"delay must be >= 0, got {delay}")
        ev = Event(
            time=self.clock.now + delay,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, ev)
        return ev

    def run(self, *, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain events in time order; returns the number executed."""
        executed = 0
        while self._heap and executed < max_events:
            if until is not None and self._heap[0].time > until:
                break
            ev = heapq.heappop(self._heap)
            self.clock.advance_to(ev.time)
            ev.action()
            executed += 1
        if executed >= max_events:
            raise ExperimentError(f"simulation exceeded {max_events} events")
        return executed

    @property
    def pending(self) -> int:
        """Events still scheduled."""
        return len(self._heap)
