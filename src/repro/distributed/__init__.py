"""Simulated distributed deployment of the LCA (Definitions 2.3/2.4 live)."""

from .cluster import ClusterReport, ClusterSimulation, QueryRecord, Worker
from .events import Clock, Event, EventQueue
from .metrics import ServiceMetrics, compute_metrics
from .workloads import (
    bursty_arrivals,
    hotset_queries,
    uniform_queries,
    zipf_queries,
)

__all__ = [
    "ClusterSimulation",
    "ClusterReport",
    "QueryRecord",
    "Worker",
    "EventQueue",
    "Event",
    "Clock",
    "ServiceMetrics",
    "compute_metrics",
    "uniform_queries",
    "zipf_queries",
    "hotset_queries",
    "bursty_arrivals",
]
