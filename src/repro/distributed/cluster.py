"""Simulated distributed deployment of LCA-KP.

The LCA model's promise (Section 1): many independent instances of the
algorithm, sharing only the input and the read-only seed, provide
consistent query access to one solution — no coordination, no shared
state, no communication.  This module simulates exactly that:

* N :class:`Worker` processes, each holding an independent LCA-KP copy
  (own sampler accounting, own fresh randomness, shared seed);
* clients issuing queries as a Poisson process, routed by a pluggable
  policy (random / round-robin / least-loaded);
* per-query service time proportional to the samples the worker spent
  (the model's honest cost measure), plus optional network latency;
* a global audit at the end: did any two workers ever contradict each
  other on an item?  Was the implied solution feasible?

Nothing here is a real network — it is a deterministic discrete-event
simulation (see DESIGN.md §4) — but the *consistency* property being
audited is the real one, because the workers genuinely share no state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..access.seeds import SeedChain
from ..core.parameters import LCAParameters
from ..errors import ExperimentError
from ..knapsack.instance import KnapsackInstance
from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..obs import runtime as _obs
from ..obs.trace import phase_counts
from ..serve import KnapsackService, PipelineCache
from .events import EventQueue

__all__ = ["QueryRecord", "Worker", "ClusterReport", "ClusterSimulation"]


@dataclass(frozen=True)
class QueryRecord:
    """One completed query, with timing and cost.

    ``attempts`` counts service attempts: 1 for a clean run, more when
    crash injection re-routed the query after worker failures.
    """

    query_id: int
    item: int
    worker_id: int
    include: bool
    arrived: float
    started: float
    finished: float
    samples_spent: int
    attempts: int = 1

    @property
    def latency(self) -> float:
        """End-to-end latency (queueing + service + crash retries)."""
        return self.finished - self.arrived


class Worker:
    """One simulated machine holding a stateless LCA-KP copy.

    The copy is wrapped in a :class:`~repro.serve.KnapsackService`;
    when the simulation passes a shared pipeline cache, workers reuse
    each other's pipeline runs for pinned nonces — the serving-layer
    deployment — while keeping strictly per-worker cost accounting.
    """

    def __init__(
        self,
        worker_id: int,
        instance: KnapsackInstance,
        epsilon: float,
        seed: int | SeedChain,
        params: LCAParameters | None,
        *,
        seconds_per_sample: float = 1e-6,
        cache: PipelineCache | bool = False,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.worker_id = worker_id
        # A faulty cluster keeps answering: workers with a fault plan
        # serve non-strict, so unrecovered faults become reason-coded
        # degraded answers instead of crashing the simulation.
        self._service = KnapsackService(
            instance,
            epsilon,
            seed,
            params=params,
            cache=cache,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            strict=fault_plan is None,
        )
        self._seconds_per_sample = seconds_per_sample
        self.busy_until = 0.0
        self.queries_served = 0
        self.degraded_served = 0
        self.phase_queries: dict[str, int] = {}
        self.phase_samples: dict[str, int] = {}
        self.phase_blocks: dict[str, int] = {}

    def serve(self, item: int, nonce: int) -> tuple[bool, int, float]:
        """Answer one query; returns (answer, samples spent, service time).

        When the global tracer is enabled, the query's span tree is
        harvested into :attr:`phase_queries`/:attr:`phase_samples` —
        the per-worker aggregation the cluster report rolls up.  A
        pipeline served from the shared cache spends (almost) no
        samples, so its simulated service time collapses to the point
        query — the latency story behind the serving layer.
        """
        before = self._service.samples_used
        with _obs.span("cluster.serve") as span:
            result = self._service.answer(item, nonce=nonce)
        if span is not None:
            for phase, n in phase_counts(span, "queries").items():
                self.phase_queries[phase] = self.phase_queries.get(phase, 0) + n
            for phase, n in phase_counts(span, "samples").items():
                self.phase_samples[phase] = self.phase_samples.get(phase, 0) + n
            for phase, n in phase_counts(span, "sample_blocks").items():
                self.phase_blocks[phase] = self.phase_blocks.get(phase, 0) + n
        spent = self._service.samples_used - before
        self.queries_served += 1
        if getattr(result, "degraded", False):
            self.degraded_served += 1
        return result.include, spent, spent * self._seconds_per_sample

    @property
    def total_samples(self) -> int:
        """Cumulative weighted samples drawn by this worker."""
        return self._service.samples_used

    @property
    def total_queries(self) -> int:
        """Cumulative charged oracle queries by this worker."""
        return self._service.queries_used

    @property
    def total_probe_retries(self) -> int:
        """Cumulative budget-charged re-probes by this worker."""
        return self._service.retries_used


@dataclass(frozen=True)
class ClusterReport:
    """Outcome of one simulated deployment.

    ``phase_queries``/``phase_samples`` aggregate the per-query span
    trees across all workers (empty when tracing was off for the run).
    """

    records: tuple[QueryRecord, ...]
    contested_items: tuple[int, ...]
    consistency_rate: float
    mean_latency: float
    p95_latency: float
    total_samples: int
    per_worker_load: tuple[int, ...]
    total_crashes: int = 0
    total_queries: int = 0
    total_degraded: int = 0
    total_probe_retries: int = 0
    phase_queries: dict = field(default_factory=dict)
    phase_samples: dict = field(default_factory=dict)
    phase_blocks: dict = field(default_factory=dict)
    cache: dict | None = None

    @property
    def fully_consistent(self) -> bool:
        """True iff no item ever received contradictory answers."""
        return not self.contested_items

    def to_dict(self) -> dict:
        """JSON-ready summary (records are summarized, not dumped)."""
        return {
            "queries_answered": len(self.records),
            "consistency_rate": self.consistency_rate,
            "contested_items": list(self.contested_items),
            "mean_latency": self.mean_latency,
            "p95_latency": self.p95_latency,
            "total_samples": self.total_samples,
            "total_queries": self.total_queries,
            "per_worker_load": list(self.per_worker_load),
            "total_crashes": self.total_crashes,
            "total_degraded": self.total_degraded,
            "total_probe_retries": self.total_probe_retries,
            "phase_queries": dict(self.phase_queries),
            "phase_samples": dict(self.phase_samples),
            "phase_blocks": dict(self.phase_blocks),
            "cache": dict(self.cache) if self.cache is not None else None,
        }


class ClusterSimulation:
    """Poisson clients -> routed queries -> stateless workers -> audit.

    Parameters
    ----------
    instance, epsilon, seed, params:
        The shared problem and LCA configuration (the *only* things
        workers share).
    workers:
        Number of simulated machines.
    routing:
        ``"random"``, ``"round_robin"`` or ``"least_loaded"``.
    arrival_rate:
        Mean client queries per simulated second.
    network_latency:
        Fixed one-way latency added before service begins.
    crash_rate:
        Probability that a worker crashes mid-service; the query is then
        re-routed and retried.  Crash injection showcases the model's
        fault-tolerance argument: a restarted LCA worker has *no state
        to restore* — the retry is just another stateless run, so
        consistency survives any crash pattern by construction.
    cache_capacity:
        Size of a cluster-shared pipeline cache (0, the default,
        disables caching and preserves strictly per-query pipeline
        runs).
    nonce_pool:
        When > 0, each query draws its fresh-randomness nonce from a
        pool of this many pre-drawn values instead of an unbounded
        stream.  Pinning nonces is what makes the shared cache earn
        hits — it models the serving-layer deployment where a front end
        assigns queries to a bounded set of runs.  Requires
        ``cache_capacity`` > 0 to have any effect on cost.
    """

    def __init__(
        self,
        instance: KnapsackInstance,
        epsilon: float,
        seed: int | SeedChain = 0,
        *,
        params: LCAParameters | None = None,
        workers: int = 4,
        routing: str = "round_robin",
        arrival_rate: float = 10.0,
        network_latency: float = 0.001,
        seconds_per_sample: float = 1e-6,
        worker_speeds: list[float] | None = None,
        crash_rate: float = 0.0,
        rng_seed: int = 0,
        cache_capacity: int = 0,
        nonce_pool: int = 0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if routing not in ("random", "round_robin", "least_loaded"):
            raise ExperimentError(f"unknown routing policy {routing!r}")
        if arrival_rate <= 0:
            raise ExperimentError("arrival_rate must be positive")
        if not 0 <= crash_rate < 1:
            raise ExperimentError("crash_rate must lie in [0, 1)")
        if worker_speeds is not None:
            if len(worker_speeds) != workers:
                raise ExperimentError("worker_speeds must have one entry per worker")
            if any(s <= 0 for s in worker_speeds):
                raise ExperimentError("worker speeds must be positive")
        if nonce_pool < 0:
            raise ExperimentError("nonce_pool must be >= 0")
        self._crash_rate = crash_rate
        self._crashes = 0
        self._instance = instance
        self._cache = (
            PipelineCache(capacity=cache_capacity) if cache_capacity > 0 else None
        )
        self._workers = [
            Worker(
                w,
                instance,
                epsilon,
                seed,
                params,
                # A speed-s worker serves samples s times faster; the
                # heterogeneous fleet is where least_loaded routing earns
                # its keep over round_robin.
                seconds_per_sample=seconds_per_sample
                / (worker_speeds[w] if worker_speeds else 1.0),
                cache=self._cache if self._cache is not None else False,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
            )
            for w in range(workers)
        ]
        self._routing = routing
        self._arrival_rate = arrival_rate
        self._network_latency = network_latency
        self._rng = np.random.default_rng(rng_seed)
        self._nonce_pool = (
            [int(x) for x in self._rng.integers(2**62, size=nonce_pool)]
            if nonce_pool > 0
            else None
        )
        self._queue = EventQueue()
        self._records: list[QueryRecord] = []
        self._rr_next = 0

    # ------------------------------------------------------------------
    def _route(self) -> Worker:
        if self._routing == "random":
            return self._workers[int(self._rng.integers(len(self._workers)))]
        if self._routing == "round_robin":
            w = self._workers[self._rr_next % len(self._workers)]
            self._rr_next += 1
            return w
        return min(self._workers, key=lambda w: w.busy_until)

    def run(
        self,
        num_queries: int,
        *,
        items: list[int] | None = None,
        arrival_times: list[float] | None = None,
    ) -> ClusterReport:
        """Simulate ``num_queries`` client queries and audit the outcome.

        ``items`` fixes the queried indices (with repetition allowed —
        repeats are what make the consistency audit meaningful);
        defaults to uniform random items with deliberate repetition.
        ``arrival_times`` overrides the built-in Poisson stream with an
        explicit increasing timestamp list (e.g. from
        :func:`repro.distributed.workloads.bursty_arrivals`).
        """
        if num_queries < 1:
            raise ExperimentError("num_queries must be >= 1")
        n = self._instance.n
        if items is None:
            # Zipf-flavoured repetition: half the queries hit a small
            # hot set, so contradictions would actually be observed.
            hot = self._rng.choice(n, size=max(1, min(10, n)), replace=False)
            items = [
                int(self._rng.choice(hot))
                if self._rng.random() < 0.5
                else int(self._rng.integers(n))
                for _ in range(num_queries)
            ]
        if len(items) != num_queries:
            raise ExperimentError("items must have length num_queries")
        if arrival_times is not None:
            if len(arrival_times) != num_queries:
                raise ExperimentError("arrival_times must have length num_queries")
            if any(b <= a for a, b in zip(arrival_times, arrival_times[1:])):
                raise ExperimentError("arrival_times must be strictly increasing")
            if arrival_times and arrival_times[0] < 0:
                raise ExperimentError("arrival_times must be non-negative")

        arrival = 0.0
        for qid, item in enumerate(items):
            if arrival_times is not None:
                arrival = float(arrival_times[qid])
            else:
                arrival += float(self._rng.exponential(1.0 / self._arrival_rate))
            self._queue.schedule(
                arrival, self._make_arrival(qid, item, arrival), label=f"arrive-{qid}"
            )
        self._queue.run()
        return self._report()

    def _make_arrival(self, qid: int, item: int, arrived: float, attempts: int = 1):
        def on_arrival() -> None:
            worker = self._route()
            start = max(self._queue.clock.now + self._network_latency, worker.busy_until)
            if self._nonce_pool is not None:
                nonce = self._nonce_pool[
                    int(self._rng.integers(len(self._nonce_pool)))
                ]
            else:
                nonce = int(self._rng.integers(2**62))
            if self._crash_rate > 0 and float(self._rng.random()) < self._crash_rate:
                # The worker dies as it picks the query up.  Restarting a
                # stateless LCA restores nothing (there is nothing to
                # restore); the query is simply re-routed as a fresh run
                # after a network round-trip.  The crashed attempt holds
                # the worker only up to `start`.
                self._crashes += 1
                _obs.record_event(
                    "cluster.crash",
                    query=qid,
                    worker=worker.worker_id,
                    attempt=attempts,
                )
                worker.busy_until = start
                self._queue.schedule(
                    max(0.0, start - self._queue.clock.now) + self._network_latency,
                    self._make_arrival(qid, item, arrived, attempts + 1),
                    label=f"retry-{qid}",
                )
                return

            # Serve the query logically now (the answer is a deterministic
            # function of (instance, seed, nonce)), reserve the worker for
            # the whole service interval so later arrivals queue behind
            # it, and record completion at the simulated finish time.
            include, spent, service = worker.serve(item, nonce)
            finished = start + service
            worker.busy_until = finished

            def on_complete() -> None:
                self._records.append(
                    QueryRecord(
                        query_id=qid,
                        item=item,
                        worker_id=worker.worker_id,
                        include=include,
                        arrived=arrived,
                        started=start,
                        finished=finished,
                        samples_spent=spent,
                        attempts=attempts,
                    )
                )

            self._queue.schedule(
                max(0.0, finished - self._queue.clock.now),
                on_complete,
                label=f"complete-{qid}",
            )

        return on_arrival

    def _report(self) -> ClusterReport:
        records = tuple(sorted(self._records, key=lambda r: r.query_id))
        votes: dict[int, set[bool]] = {}
        for r in records:
            votes.setdefault(r.item, set()).add(r.include)
        contested = tuple(sorted(i for i, v in votes.items() if len(v) > 1))
        repeated = [i for i, _ in votes.items()]
        consistent_items = sum(1 for i in repeated if len(votes[i]) == 1)
        latencies = np.array([r.latency for r in records]) if records else np.zeros(1)
        phase_queries: dict[str, int] = {}
        phase_samples: dict[str, int] = {}
        phase_blocks: dict[str, int] = {}
        for w in self._workers:
            for phase, n in w.phase_queries.items():
                phase_queries[phase] = phase_queries.get(phase, 0) + n
            for phase, n in w.phase_samples.items():
                phase_samples[phase] = phase_samples.get(phase, 0) + n
            for phase, n in w.phase_blocks.items():
                phase_blocks[phase] = phase_blocks.get(phase, 0) + n
        return ClusterReport(
            records=records,
            contested_items=contested,
            consistency_rate=consistent_items / max(1, len(repeated)),
            mean_latency=float(latencies.mean()),
            p95_latency=float(np.quantile(latencies, 0.95)),
            total_samples=sum(w.total_samples for w in self._workers),
            per_worker_load=tuple(w.queries_served for w in self._workers),
            total_crashes=self._crashes,
            total_queries=sum(w.total_queries for w in self._workers),
            total_degraded=sum(w.degraded_served for w in self._workers),
            total_probe_retries=sum(w.total_probe_retries for w in self._workers),
            phase_queries=phase_queries,
            phase_samples=phase_samples,
            phase_blocks=phase_blocks,
            cache=self._cache.stats() if self._cache is not None else None,
        )
