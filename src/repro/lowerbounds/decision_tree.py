"""Exact and exhaustive verification of the query lower bounds.

Monte-Carlo sweeps (bench E1/E3) show the *canonical* strategies match
their closed forms; this module closes the remaining gap in the
empirical story — "maybe some other strategy does better" — two ways:

1. :func:`optimal_or_success_exact` — exact Bayes value of the *best
   possible* adaptive strategy against the hard OR distribution, by
   dynamic programming over knowledge states.  On the hard distribution
   (0^m w.p. 1/2, else a uniform e_j) every probe answer "0" leads to a
   state fully described by the number of distinct positions probed, so
   the DP is linear and exact.

2. :func:`enumerate_all_strategies_or` — for tiny m and q, literally
   enumerate **every** deterministic adaptive decision tree (choice of
   probe position at each internal node, choice of output bit at each
   leaf) and evaluate its exact success probability.  Randomized
   strategies are mixtures of deterministic ones, so the maximum over
   this enumeration bounds *all* algorithms (Yao's principle,
   executable).  This is the strongest form of lower-bound evidence a
   finite computation can give.

Both confirm the closed form ``1/2 + q/(2m)`` used throughout.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..errors import ReproError

__all__ = [
    "optimal_or_success_exact",
    "enumerate_all_strategies_or",
    "best_strategy_value",
]


def optimal_or_success_exact(m: int, q: int) -> Fraction:
    """Exact optimal success probability (as a fraction), via Bayes DP.

    Hard distribution: x = 0^m w.p. 1/2, else x = e_j with j uniform.
    Any adaptive strategy's view after probing k distinct positions and
    seeing only zeros is exchangeable, so the state is just k:

    * probing a fresh position reveals the planted one w.p.
      P(one remains among unprobed) * 1/(m-k);
    * at the budget, the Bayes-optimal guess compares the posterior
      P(OR = 1 | all k probes zero) against 1/2.

    The recursion collapses to the closed form
    ``1/2 + min(q, m)/(2m)`` — which this function *derives* rather than
    assumes (the test suite checks the equality symbolically).
    """
    if m < 1:
        raise ReproError(f"m must be >= 1, got {m}")
    if q < 0:
        raise ReproError(f"q must be >= 0, got {q}")
    q = min(q, m)

    # P(world) prior: w0 = 1/2 (all zeros); each e_j has mass 1/(2m).
    # State after k zero-answers: posterior mass w0 on "all zeros" and
    # (m - k)/(2m) spread over the remaining positions; normalizer
    # z_k = 1/2 + (m - k)/(2m).
    @lru_cache(maxsize=None)
    def value(k: int, budget: int) -> Fraction:
        """Max P(correct | state k), *unnormalized* by z_k... normalized."""
        z = Fraction(1, 2) + Fraction(m - k, 2 * m)
        if budget == 0:
            # Guess the likelier world.
            p_zero = Fraction(1, 2) / z
            return max(p_zero, 1 - p_zero)
        # Probing a fresh position: with prob (1/(2m))/z the probe hits
        # the planted one (then we answer 1, always correct); otherwise
        # we move to state k+1.
        hit = Fraction(1, 2 * m) / z
        z_next = Fraction(1, 2) + Fraction(m - k - 1, 2 * m)
        probe_value = hit * 1 + (z_next / z) * value(k + 1, budget - 1)
        # Stopping early is also allowed (a strategy may waste budget);
        # the optimum never benefits, but include it for correctness.
        stop_value = value(k, 0)
        return max(probe_value, stop_value)

    return value(0, q)


def _evaluate_tree(m: int, strategy, x: tuple) -> int:
    """Run a decision tree (nested dict) on input x; return its guess."""
    node = strategy
    while isinstance(node, tuple):
        position, on_zero, on_one = node
        node = on_one if x[position] else on_zero
    return node


def enumerate_all_strategies_or(m: int, q: int) -> tuple[Fraction, int]:
    """Max exact success over ALL deterministic q-query trees, for tiny m.

    Returns ``(best_success, strategies_considered)``.  A strategy is a
    full binary decision tree of depth <= q whose internal nodes pick a
    probe position and whose leaves output a guess in {0, 1}.  The
    count grows doubly exponentially; m <= 6 and q <= 3 stay tractable.

    WLOG reductions applied (each loses no generality):

    * never re-probe a known position (its answer is known);
    * after seeing a "1", the posterior is a point mass on OR = 1, so
      the subtree is replaced by the leaf "guess 1".
    """
    if m < 1 or m > 8:
        raise ReproError("exhaustive enumeration supports 1 <= m <= 8")
    if q < 0 or q > 3:
        raise ReproError("exhaustive enumeration supports 0 <= q <= 3")

    # The hard distribution's support: 0^m and the m unit vectors.
    worlds: list[tuple[tuple, Fraction]] = [
        (tuple([0] * m), Fraction(1, 2))
    ]
    for j in range(m):
        e = [0] * m
        e[j] = 1
        worlds.append((tuple(e), Fraction(1, 2 * m)))

    count = 0
    best = Fraction(0)

    def build(available: tuple, depth: int):
        """Yield every subtree over the given unprobed positions."""
        nonlocal count
        # Leaves: guess 0 or 1.
        yield 0
        yield 1
        if depth == 0:
            return
        for pos in available:
            rest = tuple(p for p in available if p != pos)
            for on_zero in build(rest, depth - 1):
                # After a "1" the answer is forced: guess 1.
                yield (pos, on_zero, 1)

    for strategy in build(tuple(range(m)), q):
        count += 1
        success = Fraction(0)
        for x, weight in worlds:
            guess = _evaluate_tree(m, strategy, x)
            truth = int(any(x))
            if guess == truth:
                success += weight
        if success > best:
            best = success
    return best, count


def best_strategy_value(m: int, q: int) -> Fraction:
    """The closed form ``1/2 + min(q, m)/(2m)`` as an exact fraction."""
    if m < 1:
        raise ReproError(f"m must be >= 1, got {m}")
    return Fraction(1, 2) + Fraction(min(max(q, 0), m), 2 * m)
