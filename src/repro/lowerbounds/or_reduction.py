"""The Theorem 3.2 reduction: Knapsack LCA => OR query complexity.

Figure 1's construction, executable.  Given (oracle access to) an input
``x in {0,1}^(n-1)`` for the OR function, simulate query access to the
Knapsack instance I(x) with capacity K = 1:

* item ``i < n-1``: ``(p, w) = (x_i, 1)`` — one bit-query to x;
* item ``n-1``:     ``(p, w) = (1/2, 1)`` — free.

Every feasible solution is a singleton (every weight equals K), and the
last item belongs to the optimal solution iff ``OR(x) = 0``.  Hence one
LCA query ("is item n-1 in the optimal solution?") computes OR, and the
LCA's query budget upper-bounds the number of x-bits read — transferring
the ``R(OR_n) = Omega(n)`` lower bound (Lemma 3.1) to the LCA.

The module provides the simulation (:class:`ORReduction`), the hard
input distribution used to *certify* the lower bound empirically, and
the Bayes-optimal budgeted strategy with its closed-form success curve,
so bench E1 can plot "best achievable success probability vs. query
budget" and exhibit the linear threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..access.oracle import FunctionInstance, QueryOracle
from ..errors import QueryBudgetExceededError, ReproError

__all__ = [
    "BitOracle",
    "ORReduction",
    "hard_or_input",
    "optimal_success_probability",
    "simulate_optimal_strategy",
    "queries_needed_for_success",
]


class BitOracle:
    """Counting query access to an OR input ``x in {0,1}^m``."""

    def __init__(self, bits, *, budget: int | None = None) -> None:
        self._bits = np.asarray(bits, dtype=np.int8)
        if self._bits.ndim != 1 or self._bits.size == 0:
            raise ReproError("x must be a non-empty bit vector")
        if not np.all((self._bits == 0) | (self._bits == 1)):
            raise ReproError("x must be 0/1-valued")
        self._budget = budget
        self._queries = 0

    @property
    def m(self) -> int:
        """Length of x."""
        return int(self._bits.size)

    @property
    def queries_used(self) -> int:
        """Bit-queries spent so far."""
        return self._queries

    def query(self, i: int) -> int:
        """Reveal bit ``x_i`` (charged against the budget)."""
        if not 0 <= i < self._bits.size:
            raise ReproError(f"bit index {i} out of range [0, {self._bits.size})")
        if self._budget is not None and self._queries >= self._budget:
            raise QueryBudgetExceededError(self._budget, self._queries + 1)
        self._queries += 1
        return int(self._bits[i])

    def true_or(self) -> int:
        """Ground truth OR(x) (not charged; for verification only)."""
        return int(self._bits.any())


@dataclass
class ORReduction:
    """Simulated Knapsack instance I(x) over a :class:`BitOracle`.

    ``special_profit`` is 1/2 for Theorem 3.2; Theorem 3.3 reuses the
    construction with ``special_profit = beta < alpha`` (see
    :mod:`repro.lowerbounds.approx_reduction`).
    """

    bit_oracle: BitOracle
    special_profit: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.special_profit < 1:
            raise ReproError("special_profit must lie in (0, 1)")

    @property
    def n(self) -> int:
        """Number of Knapsack items: m + 1."""
        return self.bit_oracle.m + 1

    @property
    def special_index(self) -> int:
        """Index of the planted item s_n (0-based: n-1)."""
        return self.n - 1

    def as_instance(self) -> FunctionInstance:
        """The simulated instance; item queries translate to bit queries.

        Exactly one bit-query per item query (items below n-1), zero for
        the special item — the "local simulation" property the proof
        needs so the bound transfers without loss.
        """

        def profit(i: int) -> float:
            if i == self.special_index:
                return self.special_profit
            return float(self.bit_oracle.query(i))

        def weight(i: int) -> float:
            # Weights are all 1 by construction: answering them reveals
            # nothing, so no bit-query is charged.
            return 1.0

        return FunctionInstance(self.n, 1.0, profit, weight)

    def oracle(self, *, budget: int | None = None) -> QueryOracle:
        """Query oracle over the simulated instance."""
        return QueryOracle(self.as_instance(), budget=budget)

    # ------------------------------------------------------------------
    def special_in_unique_optimum(self) -> bool:
        """Ground truth: s_n is in the optimal solution iff OR(x) = 0."""
        return self.bit_oracle.true_or() == 0


def hard_or_input(m: int, rng: np.random.Generator) -> np.ndarray:
    """The hard OR input distribution: 0^m w.p. 1/2, else a uniform e_j.

    This is the distribution against which probing strategies provably
    cannot beat ``1/2 + q / (2m)`` success with q queries — the source
    of the Omega(n) threshold.
    """
    if m < 1:
        raise ReproError(f"m must be >= 1, got {m}")
    x = np.zeros(m, dtype=np.int8)
    if rng.random() < 0.5:
        x[int(rng.integers(m))] = 1
    return x


def optimal_success_probability(m: int, q: int) -> float:
    """Closed-form success of the best q-query strategy on the hard input.

    A strategy probing q distinct positions sees all zeros unless it
    hits the planted one.  On all-zeros the Bayes-optimal guess is
    OR = 0 (posterior >= 1/2), so

        P[success] = 1/2 + (1/2) * min(q, m) / m .

    Success 2/3 therefore needs q >= m/3: the Theorem 3.2 linear lower
    bound, as an exact curve.
    """
    if m < 1:
        raise ReproError(f"m must be >= 1, got {m}")
    q = max(0, min(q, m))
    return 0.5 + 0.5 * q / m


def queries_needed_for_success(m: int, success: float = 2 / 3) -> int:
    """Invert :func:`optimal_success_probability`: min q achieving ``success``."""
    if not 0.5 <= success <= 1:
        raise ReproError("success must lie in [1/2, 1] for the hard distribution")
    return math.ceil((2 * success - 1) * m)


def simulate_optimal_strategy(
    m: int,
    q: int,
    rng: np.random.Generator,
    *,
    trials: int = 1000,
) -> float:
    """Monte-Carlo the optimal budgeted strategy against the hard input.

    The strategy probes q uniformly-random distinct positions; if it
    finds a one it answers OR = 1, otherwise OR = 0.  Returns the
    empirical success rate (should match
    :func:`optimal_success_probability` within sampling error — bench E1
    asserts this).
    """
    if trials < 1:
        raise ReproError("trials must be >= 1")
    q = max(0, min(q, m))
    hits = 0
    for _ in range(trials):
        x = hard_or_input(m, rng)
        probes = rng.choice(m, size=q, replace=False) if q else np.empty(0, dtype=int)
        saw_one = bool(x[probes].any()) if q else False
        guess = 1 if saw_one else 0
        hits += int(guess == int(x.any()))
    return hits / trials
