"""Executable forms of the Section 3 impossibility results.

Lower bounds quantify over all algorithms, so "reproducing" them means:
(1) implementing the reductions and hard distributions exactly as the
proofs define them, (2) verifying their load-bearing semantic claims
instance-by-instance, and (3) measuring the success-vs-budget curves of
the information-theoretically optimal strategies, which exhibit the
Omega(n) thresholds the theorems assert.  See DESIGN.md §3.
"""

from .approx_reduction import ApproxReduction, verify_reduction_semantics
from .decision_tree import (
    best_strategy_value,
    enumerate_all_strategies_or,
    optimal_or_success_exact,
)
from .maximal_hard import (
    HardMaximalInstance,
    budget_for_error,
    draw_hard_instance,
    grade_answer_pair,
    probing_error_probability,
    probing_strategy_answers,
)
from .or_reduction import (
    BitOracle,
    ORReduction,
    hard_or_input,
    optimal_success_probability,
    queries_needed_for_success,
    simulate_optimal_strategy,
)
from .query_complexity import (
    StrategyEvaluation,
    evaluate_or_strategy,
    sweep_maximal_budgets,
    sweep_or_budgets,
)

__all__ = [
    "optimal_or_success_exact",
    "enumerate_all_strategies_or",
    "best_strategy_value",
    "BitOracle",
    "ORReduction",
    "hard_or_input",
    "optimal_success_probability",
    "queries_needed_for_success",
    "simulate_optimal_strategy",
    "ApproxReduction",
    "verify_reduction_semantics",
    "HardMaximalInstance",
    "draw_hard_instance",
    "grade_answer_pair",
    "probing_strategy_answers",
    "probing_error_probability",
    "budget_for_error",
    "StrategyEvaluation",
    "evaluate_or_strategy",
    "sweep_or_budgets",
    "sweep_maximal_budgets",
]
