"""Generic query-complexity experiment harness.

Lower bounds cannot be "run" — they quantify over all algorithms.  What
*can* be run, and is what bench E1-E3 do, is:

1. evaluate the information-theoretically optimal strategy for the hard
   distribution (computed in closed form in the construction modules),
   sweeping the query budget and locating the success threshold;
2. pit arbitrary user-supplied strategies against the same distribution
   and check none beats the closed-form optimum (a consistency check on
   the theory, and a harness for anyone who thinks they have a
   loophole).

:class:`StrategyEvaluation` is the common result record; the
``sweep_*`` helpers produce the budget -> success curves the benches
print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.stats import binomial_ci
from ..errors import ExperimentError
from .maximal_hard import (
    draw_hard_instance,
    grade_answer_pair,
    probing_error_probability,
    probing_strategy_answers,
)
from .or_reduction import (
    hard_or_input,
    optimal_success_probability,
)

__all__ = [
    "StrategyEvaluation",
    "evaluate_or_strategy",
    "sweep_or_budgets",
    "sweep_maximal_budgets",
]


@dataclass(frozen=True)
class StrategyEvaluation:
    """Empirical success of one strategy at one budget."""

    budget: int
    trials: int
    successes: int
    theoretical: float | None = None

    @property
    def success_rate(self) -> float:
        """Empirical success probability."""
        return self.successes / self.trials

    def confidence_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson interval on the success probability."""
        return binomial_ci(self.successes, self.trials, confidence)

    def consistent_with_theory(self, confidence: float = 0.99) -> bool:
        """True iff the closed-form value lies in the Wilson interval."""
        if self.theoretical is None:
            return True
        lo, hi = self.confidence_interval(confidence)
        # 1e-9 slack absorbs float error in the Wilson endpoints (the
        # upper bound is exactly 1 at p-hat = 1 only in exact arithmetic).
        return lo - 1e-9 <= self.theoretical <= hi + 1e-9


def evaluate_or_strategy(
    strategy: Callable[[Callable[[int], int], int, int], int],
    m: int,
    budget: int,
    rng: np.random.Generator,
    *,
    trials: int = 2000,
) -> StrategyEvaluation:
    """Run ``strategy`` against the hard OR distribution.

    ``strategy(query, m, budget)`` receives a bit-query callable (raises
    past the budget), the input length and the budget, and must return
    its OR guess in {0, 1}.
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    successes = 0
    for _ in range(trials):
        x = hard_or_input(m, rng)
        used = 0

        def query(i: int) -> int:
            nonlocal used
            if used >= budget:
                raise ExperimentError("strategy exceeded its budget")
            used += 1
            return int(x[i])

        guess = strategy(query, m, budget)
        successes += int(int(guess) == int(x.any()))
    return StrategyEvaluation(
        budget=budget,
        trials=trials,
        successes=successes,
        theoretical=optimal_success_probability(m, budget),
    )


def sweep_or_budgets(
    m: int,
    budgets: Sequence[int],
    rng: np.random.Generator,
    *,
    trials: int = 2000,
) -> list[StrategyEvaluation]:
    """Optimal-strategy success across budgets (the E1 curve).

    The optimal strategy for the hard input is "probe distinct random
    positions; report 1 iff a one was seen".
    """

    def optimal(query: Callable[[int], int], m_: int, budget: int) -> int:
        probes = rng.choice(m_, size=min(budget, m_), replace=False)
        return int(any(query(int(p)) for p in probes))

    return [evaluate_or_strategy(optimal, m, b, rng, trials=trials) for b in budgets]


def sweep_maximal_budgets(
    n: int,
    budgets: Sequence[int],
    rng: np.random.Generator,
    *,
    trials: int = 2000,
) -> list[StrategyEvaluation]:
    """Canonical-strategy success on the Theorem 3.4 protocol (E3 curve).

    Success = the (s_i, s_j) answer pair is consistent with some
    maximal solution; ``theoretical`` carries the closed-form
    ``1 - probing_error_probability``.
    """
    out = []
    for budget in budgets:
        successes = 0
        for _ in range(trials):
            inst = draw_hard_instance(n, rng)
            a_i, a_j = probing_strategy_answers(inst, budget, rng)
            successes += int(grade_answer_pair(inst, a_i, a_j))
        out.append(
            StrategyEvaluation(
                budget=budget,
                trials=trials,
                successes=successes,
                theoretical=1.0 - probing_error_probability(n, budget),
            )
        )
    return out
