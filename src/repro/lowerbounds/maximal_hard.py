"""Theorem 3.4's hard distribution for Maximal-Feasible Knapsack.

The construction (profits all zero, capacity K = 1):

* pick a uniformly random pair of indices (i, j);
* ``w_i = 3/4`` always; ``w_j = 1/4`` or ``3/4`` with probability 1/2
  each; every other item has weight 0.

If ``w_j = 1/4`` the unique maximal solution contains *all* items; if
``w_j = 3/4`` there are exactly two maximal solutions, each dropping
one of the heavy pair.  An LCA asked about s_i and then s_j must say
yes to a weight-3/4 item it cannot distinguish from the "include
everything" world — unless it spends ~n queries locating the other
heavy item — and saying yes to both heavy items is infeasible.  The
proof shows any algorithm with success probability 4/5 needs >= n/11
queries.

This module draws the distribution, provides the two-query *evaluation
protocol* (ask s_i, ask s_j, grade the answer pair against the set of
maximal solutions), implements the proof's canonical probing strategy,
and gives the closed-form error curve bench E3 plots against budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..knapsack.instance import KnapsackInstance

__all__ = [
    "HardMaximalInstance",
    "draw_hard_instance",
    "grade_answer_pair",
    "probing_strategy_answers",
    "probing_error_probability",
    "budget_for_error",
]


@dataclass(frozen=True)
class HardMaximalInstance:
    """One draw from the hard distribution, with its hidden structure."""

    n: int
    i: int  # the always-3/4 item
    j: int  # the coin-flipped item
    w_j: float  # 1/4 or 3/4

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ReproError("hard instances need n >= 2")
        if self.i == self.j:
            raise ReproError("the heavy pair must be distinct")
        if self.w_j not in (0.25, 0.75):
            raise ReproError("w_j must be 1/4 or 3/4")

    def weight(self, k: int) -> float:
        """Weight of item k."""
        if k == self.i:
            return 0.75
        if k == self.j:
            return self.w_j
        return 0.0

    def instance(self) -> KnapsackInstance:
        """Materialize as a (zero-profit) KnapsackInstance, K = 1."""
        weights = np.zeros(self.n)
        weights[self.i] = 0.75
        weights[self.j] = self.w_j
        return KnapsackInstance(
            np.zeros(self.n), weights, 1.0, normalize=False, validate=True
        )

    def maximal_solutions(self) -> list[frozenset[int]]:
        """All maximal feasible solutions (one or two of them)."""
        everything = frozenset(range(self.n))
        if self.w_j == 0.25:
            return [everything]  # 3/4 + 1/4 = 1 <= K: take all
        return [everything - {self.i}, everything - {self.j}]


def draw_hard_instance(n: int, rng: np.random.Generator) -> HardMaximalInstance:
    """Sample the Theorem 3.4 distribution."""
    if n < 2:
        raise ReproError("hard instances need n >= 2")
    i, j = rng.choice(n, size=2, replace=False)
    w_j = 0.25 if rng.random() < 0.5 else 0.75
    return HardMaximalInstance(n=n, i=int(i), j=int(j), w_j=w_j)


def grade_answer_pair(
    inst: HardMaximalInstance, answer_i: bool, answer_j: bool
) -> bool:
    """Is the (s_i, s_j) answer pair consistent with SOME maximal solution?

    This is the success criterion of the proof's two-query protocol:
    the LCA's answers on the heavy pair must match at least one maximal
    solution (the zero-weight items are in every maximal solution, so
    they never discriminate).
    """
    for sol in inst.maximal_solutions():
        if (inst.i in sol) == answer_i and (inst.j in sol) == answer_j:
            return True
    return False


def probing_strategy_answers(
    inst: HardMaximalInstance,
    budget: int,
    rng: np.random.Generator,
    *,
    tie_rule: str = "exclude-larger-index",
) -> tuple[bool, bool]:
    """The proof's canonical stateless strategy, run on both queries.

    Per query about item k (already knowing ``w_k``), the strategy
    probes up to ``budget`` other uniformly-random distinct items:

    * if ``w_k < 3/4``: answer yes (always safe);
    * if it finds the other heavy item and both weigh 3/4: answer by the
      deterministic ``tie_rule`` (a consistent choice of which heavy
      item to drop — here: exclude the one with the larger index);
    * if it finds the other heavy item with weight 1/4, or finds
      nothing: answer yes (the proof's forced move — the "everything is
      in" world is too likely to contradict).

    Both queries share no state (fresh probes each), exactly the
    memorylessness the lower bound exploits.
    """
    if tie_rule != "exclude-larger-index":
        raise ReproError(f"unknown tie rule {tie_rule!r}")

    def answer_for(k: int) -> bool:
        w_k = inst.weight(k)
        if w_k < 0.75:
            return True
        others = [t for t in range(inst.n) if t != k]
        probes = rng.choice(len(others), size=min(budget, len(others)), replace=False)
        for p in probes:
            other = others[int(p)]
            w_other = inst.weight(other)
            if w_other == 0.75:
                # Both heavies found: drop the larger index, keep the other.
                return k < other
            if w_other == 0.25:
                return True  # the unique maximal solution includes all
        return True  # nothing found: must say yes (see Lemma 3.5)

    return answer_for(inst.i), answer_for(inst.j)


def probing_error_probability(n: int, budget: int) -> float:
    """Closed-form failure probability of the canonical strategy.

    Errors only occur in the ``w_j = 3/4`` world (probability 1/2).
    With ``f = q/(n-1)`` the per-query probability of locating the other
    heavy item (queries are stateless, hence independent):

    * both queries find it: the tie rule answers (yes, no) or (no, yes)
      — always consistent;
    * one finds, one misses: the finder answers by index order, the
      misser answers yes — consistent exactly when the misser was the
      one the tie rule keeps, which by i/j symmetry has probability 1/2;
    * both miss: (yes, yes) — infeasible, always an error.

    Summing: ``P[error] = 1/2 [ (1-f)^2 + 2 f (1-f) / 2 ] = (1-f)/2``.

    At q = 0 the error is 1/2; it drops below the theorem's 1/5
    threshold only once ``q >= 0.6 (n-1)`` — a linear number of
    queries, which is the Omega(n) statement in measurable form.
    """
    if n < 2:
        raise ReproError("n must be >= 2")
    q = max(0, min(budget, n - 1))
    find = q / (n - 1)
    return 0.5 * (1.0 - find)


def budget_for_error(n: int, error: float = 0.2) -> int:
    """Invert :func:`probing_error_probability`: min budget with P[err] <= error."""
    if not 0 < error <= 0.5:
        raise ReproError("error must lie in (0, 1/2] for this curve")
    import math

    return math.ceil((1.0 - 2.0 * error) * (n - 1))
