"""The Theorem 3.3 reduction: no sublinear LCA for *any* approximation.

Identical skeleton to Theorem 3.2 (:mod:`.or_reduction`) with one
change: the planted item's profit is ``beta``, an arbitrary value in
``(0, alpha)``.  Then

* if ``OR(x) = 0``: the planted singleton {s_n} is the *unique optimal*
  solution (value beta vs. 0 elsewhere), hence also the unique
  alpha-approximate one;
* if ``OR(x) = 1``: OPT = 1 and {s_n} has value ``beta < alpha * 1``,
  so s_n is in **no** alpha-approximate solution.

Asking the LCA about s_n therefore computes OR, for every fixed
``alpha`` — taking ``alpha -> 0`` rules out every finite approximation
guarantee.  The module wraps the construction with its semantic
verifier (that the claimed equivalence really holds instance by
instance), which bench E2 exercises across a grid of alphas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..knapsack.instance import KnapsackInstance
from .or_reduction import BitOracle, ORReduction

__all__ = ["ApproxReduction", "verify_reduction_semantics"]


@dataclass
class ApproxReduction:
    """Theorem 3.3's instance family for a fixed ``alpha``.

    ``beta`` defaults to ``alpha / 2`` (any value in (0, alpha) works;
    the proof only needs ``beta < alpha``).
    """

    alpha: float
    beta: float | None = None

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ReproError(f"alpha must lie in (0, 1], got {self.alpha}")
        if self.beta is None:
            self.beta = self.alpha / 2
        if not 0 < self.beta < self.alpha:
            raise ReproError(
                f"beta must lie in (0, alpha) = (0, {self.alpha}), got {self.beta}"
            )

    def reduction(self, bit_oracle: BitOracle) -> ORReduction:
        """The simulated instance I(x) with the planted profit beta."""
        return ORReduction(bit_oracle, special_profit=float(self.beta))

    # ------------------------------------------------------------------
    def explicit_instance(self, x) -> KnapsackInstance:
        """Materialize I(x) (for ground-truth verification only)."""
        x = np.asarray(x, dtype=float)
        profits = np.concatenate([x, [float(self.beta)]])
        weights = np.ones(profits.size)
        return KnapsackInstance(profits, weights, 1.0, normalize=False, validate=True)

    def special_is_alpha_approx(self, x) -> bool:
        """Ground truth: is {s_n} an alpha-approximate solution of I(x)?"""
        opt = 1.0 if np.asarray(x).any() else float(self.beta)
        return float(self.beta) >= self.alpha * opt


def verify_reduction_semantics(alpha: float, m: int, rng: np.random.Generator, *, trials: int = 50) -> bool:
    """Check, on random inputs, that ``{s_n} alpha-approx  <=>  OR(x)=0``.

    This is the load-bearing equivalence of the Theorem 3.3 proof;
    tests and bench E2 run it across alphas and input laws.
    """
    red = ApproxReduction(alpha)
    for _ in range(trials):
        x = (rng.random(m) < rng.uniform(0, 0.2)).astype(np.int8)
        claim = red.special_is_alpha_approx(x)
        truth = not bool(x.any())
        if claim != truth:
            return False
    return True
