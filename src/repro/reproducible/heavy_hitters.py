"""Reproducible heavy hitters (an ILPS22-style primitive, §5 spirit).

The paper's Section 5 calls the LCA/reproducibility interplay "a
fruitful direction"; this module walks one step down it and reports
back.  The primitive itself is sound and cheaply reproducible whenever
the frequency threshold ``theta`` is a constant; but using it to
replace LCA-KP's large-item stage (Algorithm 2 lines 1-3) at
``theta = eps^2`` turned out to be a *negative result* (ablation E13):
detecting an item's presence costs ``~1/p`` samples, while resolving
its frequency against a cutoff costs ``~1/(p * window)^2`` — the paper
was right to route identity discovery through coupon collection.  The
primitive remains exported for what it is good at: reproducible
*constant-threshold* mode/hitter selection.

Construction (randomized-threshold inclusion)
---------------------------------------------
To output the elements of frequency >= theta from sample access:

1. draw a shared threshold ``t ~ U[theta - tau, theta + tau]`` from the
   seed (one draw for the whole call);
2. estimate every observed element's frequency from the sample;
3. output exactly the elements with estimated frequency >= t.

Two runs disagree on an element only if its two frequency estimates
straddle t; since estimates concentrate within eta of the truth and t
is uniform over a 2*tau window, each element flips with probability
O(eta / tau), and elements with true frequency outside
[theta - tau - eta, theta + tau + eta] never flip.  The output is hence
rho-reproducible for ``m ~ (k / (rho * tau))^2``-ish samples, where k
bounds the number of borderline elements (at most 1/(theta - tau)).

This is the same randomized-rounding idea as the grid-descent median,
in its simplest setting — and unlike the quantile case there is no
domain-size dependence at all, because frequency space (not value
space) is where the rounding happens and identity (not order) is what
is output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

from ..access.seeds import SeedChain
from ..errors import ReproducibilityError

__all__ = ["HeavyHittersResult", "reproducible_heavy_hitters", "heavy_hitters_sample_complexity"]


@dataclass(frozen=True)
class HeavyHittersResult:
    """Output of one reproducible heavy-hitters run."""

    items: frozenset
    threshold: float  # the shared randomized cutoff actually used
    estimates: dict  # element -> estimated frequency (observed only)

    def __contains__(self, element: Hashable) -> bool:
        return element in self.items

    def __len__(self) -> int:
        return len(self.items)


def reproducible_heavy_hitters(
    sample: Sequence[Hashable],
    theta: float,
    seed: SeedChain,
    *,
    tau: float | None = None,
) -> HeavyHittersResult:
    """Elements of frequency >= theta, reproducibly.

    Parameters
    ----------
    sample:
        i.i.d. draws from the distribution (hashable elements).
    theta:
        Target frequency threshold in (0, 1).
    seed:
        Shared random string; equal seeds share the randomized cutoff.
    tau:
        Half-width of the randomized threshold window (default
        ``theta / 4``).  Must satisfy ``0 < tau < theta``.

    Guarantees (for sufficiently many samples):

    * every element with true frequency >= theta + tau is included;
    * no element with true frequency < theta - tau is included;
    * two runs on fresh samples output the exact same set w.h.p.
    """
    if not sample:
        raise ReproducibilityError("heavy hitters needs at least one sample")
    if not 0 < theta < 1:
        raise ReproducibilityError(f"theta must lie in (0, 1), got {theta}")
    if tau is None:
        tau = theta / 4
    if not 0 < tau < theta:
        raise ReproducibilityError(f"need 0 < tau < theta, got tau={tau}")

    threshold = seed.child("hh-threshold").uniform(theta - tau, theta + tau)
    counts = Counter(sample)
    n = len(sample)
    estimates = {element: count / n for element, count in counts.items()}
    items = frozenset(e for e, freq in estimates.items() if freq >= threshold)
    return HeavyHittersResult(items=items, threshold=threshold, estimates=estimates)


def heavy_hitters_sample_complexity(
    theta: float,
    rho: float,
    *,
    tau: float | None = None,
) -> int:
    """Samples for rho-reproducibility at threshold theta.

    Sizing: at most ``1/(theta - tau)`` elements can sit near the
    window; each flips with probability ~ eta/tau where
    ``eta = sqrt(ln(k/rho')/2m)``; solve for per-element flip budget
    ``rho * tau * (theta - tau)``.
    """
    import math

    if not 0 < theta < 1:
        raise ReproducibilityError(f"theta must lie in (0, 1), got {theta}")
    if not 0 < rho < 1:
        raise ReproducibilityError(f"rho must lie in (0, 1), got {rho}")
    if tau is None:
        tau = theta / 4
    if not 0 < tau < theta:
        raise ReproducibilityError(f"need 0 < tau < theta, got tau={tau}")
    k = 1.0 / (theta - tau)
    eta = rho * tau / (2.0 * k)
    m = math.ceil(math.log(max(2.0 * k / rho, 2.0)) / (2.0 * eta * eta))
    return max(64, m)
