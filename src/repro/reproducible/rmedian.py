"""Reproducible approximate median over a finite ordered domain.

This module implements the role played by ILPS22's ``rMedian``
(Theorem 2.7 in the paper): a randomized algorithm which, given i.i.d.
samples from a distribution D over a finite ordered domain X and a
shared random string r, outputs a tau-approximate median such that two
runs on *fresh samples* but the *same r* return the **exact same
element** with probability at least 1 - rho.

Construction (randomized grid descent with mass-based stopping)
---------------------------------------------------------------
The original ILPS22 construction is not restated in the reproduced
paper, and its sample complexity ``(3/tau^2)^(log*|X|)`` is astronomical
by design (their lower bound shows the log* dependence is *necessary*
for worst-case distributions).  We implement a practical variant that
preserves the observable guarantees at realistic sample sizes — see
DESIGN.md, "Substitutions":

1. Draw a target quantile ``theta ~ U[target - tau/2, target + tau/2]``
   and a stopping mass ``floor ~ U[tau/4, tau/2]`` from the shared seed.
   Randomizing both makes every data-dependent comparison a random-
   threshold comparison, so small sampling perturbations flip them with
   probability proportional to the perturbation.
2. Maintain a candidate interval ``[lo, hi)`` of the domain, initially
   all of X.  Each round splits it into ``branching`` equal cells with
   a randomly-offset lattice (offsets from the shared seed), locates the
   empirical within-interval theta-quantile, and descends into the cell
   containing it, renormalizing the quantile target.
3. Stop when the interval's empirical mass drops below ``floor`` or its
   width reaches 1; output the interval's **left edge** — a lattice
   point fully determined by the shared offsets and the descent path,
   so two runs agree exactly iff their descent paths agree.

Two runs disagree only if, in some round, their empirical pivots fall
in different (randomly placed) cells, or their mass estimates straddle
the (randomly placed) stopping floor — both events have probability
O(sampling deviation / threshold width) per round.  Accuracy: the true
target quantile stays inside the interval up to sampling error, and the
final interval holds at most ``~tau/2`` mass, so the emitted edge is a
tau-approximate quantile with high probability.

The official ILPS22 round structure (``log*|X|`` rounds) is retained in
the *reporting* layer: :func:`theoretical_sample_complexity` implements
the Theorem 4.5 formula verbatim so benches can print the theory bound
next to the calibrated sizes actually used.
"""

from __future__ import annotations

import math

import numpy as np

from ..access.seeds import SeedChain
from ..analysis.logstar import log_star_of_pow2
from ..errors import ReproducibilityError

__all__ = [
    "rmedian",
    "rquantile_descent",
    "rquantile_descent_batch",
    "theoretical_sample_complexity",
    "practical_sample_complexity",
]


def rquantile_descent(
    samples,
    domain_size: int,
    seed: SeedChain,
    *,
    target: float = 0.5,
    tau: float = 0.05,
    branching: int = 4,
) -> int:
    """Reproducible ``target``-quantile via randomized grid descent.

    Parameters
    ----------
    samples:
        Integer domain indices in ``[0, domain_size)``, i.i.d. from D.
    domain_size:
        ``|X|``.
    seed:
        Shared random string r.  Runs with equal seeds share the target
        perturbation, the stopping floor and every lattice offset.
    target:
        Desired quantile p (0.5 = median).
    tau:
        Accuracy: the output aims to be a tau-approximate p-quantile;
        also sets the randomized target window and the stopping mass.
    branching:
        Cells per round.  Small values keep the per-round disagreement
        probability at ``O(branching * eta / interval_mass)``; the
        default 4 gives ``log_4|X|`` rounds.

    Returns
    -------
    int
        A domain element (grid index): the left edge of the surviving
        interval.
    """
    xs = np.sort(np.asarray(samples, dtype=np.int64))
    if xs.size == 0:
        raise ReproducibilityError("rquantile_descent needs at least one sample")
    if domain_size < 1:
        raise ReproducibilityError(f"domain_size must be >= 1, got {domain_size}")
    if xs[0] < 0 or xs[-1] >= domain_size:
        raise ReproducibilityError(
            f"samples must lie in [0, {domain_size}); got range [{xs[0]}, {xs[-1]}]"
        )
    if not 0 <= target <= 1:
        raise ReproducibilityError(f"target quantile must lie in [0, 1], got {target}")
    if not 0 < tau <= 1:
        raise ReproducibilityError(f"tau must lie in (0, 1], got {tau}")
    if branching < 2:
        raise ReproducibilityError(f"branching must be >= 2, got {branching}")

    n = xs.size
    # Shared randomized thresholds: identical across runs with equal seeds.
    lo_t = max(0.0, target - tau / 2)
    hi_t = min(1.0, target + tau / 2)
    theta = seed.child("theta").uniform(lo_t, hi_t)
    floor = seed.child("floor").uniform(tau / 4, tau / 2)

    lo, hi = 0, domain_size
    t = theta
    mass = 1.0
    round_idx = 0
    while hi - lo > 1 and mass > floor:
        width = max(1, math.ceil((hi - lo) / branching))
        offset = seed.child(f"offset-{round_idx}").integer(0, width)
        a = int(np.searchsorted(xs, lo, side="left"))
        b = int(np.searchsorted(xs, hi, side="left"))
        sub = xs[a:b]
        if sub.size == 0:
            # No data left in the interval: the quantile is unidentifiable
            # here; emit the deterministic left edge.
            break
        rank = min(max(math.ceil(t * sub.size) - 1, 0), sub.size - 1)
        pivot = int(sub[rank])
        anchor = lo - offset
        cell_start = anchor + ((pivot - anchor) // width) * width
        new_lo = max(cell_start, lo)
        new_hi = min(cell_start + width, hi)
        below = float(np.searchsorted(sub, new_lo, side="left")) / sub.size
        upto = float(np.searchsorted(sub, new_hi, side="left")) / sub.size
        cell_frac = upto - below
        t = 0.5 if cell_frac <= 0 else min(max((t - below) / cell_frac, 0.0), 1.0)
        mass *= max(cell_frac, 0.0)
        lo, hi = new_lo, new_hi
        round_idx += 1

    return int(lo)


def rquantile_descent_batch(
    samples,
    domain_size: int,
    seeds,
    targets,
    *,
    tau: float = 0.05,
    branching: int = 4,
) -> np.ndarray:
    """Batched :func:`rquantile_descent`: many targets over one sample set.

    LCA-KP estimates ``t`` efficiency thresholds from the *same* sample
    array, each with its own seed node and target quantile.  Running the
    descents in lockstep shares the dominant costs — one ``np.sort`` of
    the samples and one vectorized ``np.searchsorted`` per grid level
    serving every threshold — while every per-threshold scalar
    (``theta``, ``floor``, lattice offsets, rank arithmetic, mass decay)
    is computed with the exact floating-point expressions of the scalar
    path.  The result is bit-identical to calling
    :func:`rquantile_descent` once per ``(seed, target)`` pair; a
    hypothesis property test pins this, since run outputs (and therefore
    pipeline reproducibility) depend on it.

    Parameters
    ----------
    samples, domain_size, tau, branching:
        As in :func:`rquantile_descent` (shared by all descents).
    seeds:
        Sequence of :class:`SeedChain` nodes, one per descent.
    targets:
        Sequence of quantile targets, same length as ``seeds``.

    Returns
    -------
    numpy.ndarray
        int64 array of surviving-interval left edges, one per target.
    """
    seeds = list(seeds)
    targets = [float(p) for p in targets]
    if len(seeds) != len(targets):
        raise ReproducibilityError(
            f"got {len(seeds)} seeds for {len(targets)} targets"
        )
    k = len(targets)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    xs = np.sort(np.asarray(samples, dtype=np.int64))
    if xs.size == 0:
        raise ReproducibilityError("rquantile_descent needs at least one sample")
    if domain_size < 1:
        raise ReproducibilityError(f"domain_size must be >= 1, got {domain_size}")
    if xs[0] < 0 or xs[-1] >= domain_size:
        raise ReproducibilityError(
            f"samples must lie in [0, {domain_size}); got range [{xs[0]}, {xs[-1]}]"
        )
    for p in targets:
        if not 0 <= p <= 1:
            raise ReproducibilityError(f"target quantile must lie in [0, 1], got {p}")
    if not 0 < tau <= 1:
        raise ReproducibilityError(f"tau must lie in (0, 1], got {tau}")
    if branching < 2:
        raise ReproducibilityError(f"branching must be >= 2, got {branching}")

    t = np.empty(k)
    floor = np.empty(k)
    for i, (node, p) in enumerate(zip(seeds, targets)):
        lo_t = max(0.0, p - tau / 2)
        hi_t = min(1.0, p + tau / 2)
        t[i] = node.child("theta").uniform(lo_t, hi_t)
        floor[i] = node.child("floor").uniform(tau / 4, tau / 2)

    lo = np.zeros(k, dtype=np.int64)
    hi = np.full(k, domain_size, dtype=np.int64)
    mass = np.ones(k)
    active = np.ones(k, dtype=bool)
    round_idx = 0
    while True:
        active &= (hi - lo > 1) & (mass > floor)
        if not active.any():
            break
        width = np.maximum(1, np.ceil((hi - lo) / branching)).astype(np.int64)
        offset = np.zeros(k, dtype=np.int64)
        for i in np.nonzero(active)[0]:
            offset[i] = seeds[i].child(f"offset-{round_idx}").integer(0, int(width[i]))
        a = np.searchsorted(xs, lo, side="left")
        b = np.searchsorted(xs, hi, side="left")
        sz = b - a
        # Empty interval: the quantile is unidentifiable; that descent
        # stops and emits its current left edge (the scalar `break`).
        active &= sz > 0
        if not active.any():
            break
        sz_safe = np.maximum(sz, 1)
        rank = np.minimum(
            np.maximum(np.ceil(t * sz_safe).astype(np.int64) - 1, 0), sz_safe - 1
        )
        pivot = xs[np.minimum(a + rank, xs.size - 1)]
        anchor = lo - offset
        cell_start = anchor + ((pivot - anchor) // width) * width
        new_lo = np.maximum(cell_start, lo)
        new_hi = np.minimum(cell_start + width, hi)
        # searchsorted over the full sorted array minus the interval
        # offset equals searchsorted over the sub-interval slice, since
        # new_lo/new_hi lie within [lo, hi).
        below = (np.searchsorted(xs, new_lo, side="left") - a) / sz_safe
        upto = (np.searchsorted(xs, new_hi, side="left") - a) / sz_safe
        cell_frac = upto - below
        with np.errstate(divide="ignore", invalid="ignore"):
            t_desc = np.where(
                cell_frac <= 0,
                0.5,
                np.minimum(np.maximum((t - below) / cell_frac, 0.0), 1.0),
            )
        t = np.where(active, t_desc, t)
        mass = np.where(active, mass * np.maximum(cell_frac, 0.0), mass)
        lo = np.where(active, new_lo, lo)
        hi = np.where(active, new_hi, hi)
        round_idx += 1

    return lo


def rmedian(
    samples,
    domain_size: int,
    seed: SeedChain,
    *,
    tau: float = 0.05,
    branching: int = 4,
) -> int:
    """Reproducible tau-approximate **median** (``target = 1/2``).

    This is the paper's ``rMedian`` interface (Theorem 2.7); it simply
    fixes the quantile target of :func:`rquantile_descent` at 1/2.
    """
    return rquantile_descent(
        samples, domain_size, seed, target=0.5, tau=tau, branching=branching
    )


# ----------------------------------------------------------------------
# Sample-complexity formulas
# ----------------------------------------------------------------------
def theoretical_sample_complexity(
    tau: float,
    rho: float,
    domain_bits: int,
    *,
    beta: float = 1 / 3,
) -> int:
    """Sample complexity exactly as stated in Theorem 4.5.

    ``O~((1 / (tau^2 (rho - beta)^2)) * (12 / tau^2)^(log*|X| + 1))``
    with the polylog factor instantiated as ``log(1 / (tau rho beta))``
    and unit leading constant.  These numbers are astronomical for the
    paper's parameter choices — they exist so benches can *report* the
    theory-side bound next to the calibrated size actually used
    (see :func:`practical_sample_complexity` and DESIGN.md).
    """
    _check_params(tau, rho, beta)
    ls = log_star_of_pow2(domain_bits)
    base = 1.0 / (tau * tau * (rho - beta) ** 2) if rho > beta else math.inf
    blowup = (12.0 / (tau * tau)) ** (ls + 1)
    polylog = max(1.0, math.log(1.0 / (tau * rho * beta)))
    value = base * blowup * polylog
    if value > 1e18:
        return int(1e18)  # effectively "do not run this"
    return math.ceil(value)


def practical_sample_complexity(
    tau: float,
    rho: float,
    domain_bits: int,
    *,
    beta: float = 1 / 3,
    branching: int = 4,
    scale: float = 1.0,
    max_samples: int = 200_000,
) -> int:
    """Calibrated sample size actually used by default.

    Sizing rationale: by the DKW inequality, ``m`` samples pin every
    empirical CDF value to within ``eta = sqrt(ln(4/delta) / 2m)``.
    Descent rounds near the stopping floor are the contested ones; their
    disagreement probability is ``O(branching * eta / tau)`` each, so we
    target ``eta ~ tau * rho / (4 * branching)`` and cap the result at
    ``max_samples`` to keep per-query work bounded.  ``scale``
    multiplies the target for sensitivity studies (ablation bench E10
    sweeps it).
    """
    _check_params(tau, rho, beta)
    delta = min(beta, 0.25)
    eta = tau * rho / (4.0 * branching)
    eta = max(eta, 1e-6)
    m = math.ceil(scale * math.log(4.0 / delta) / (2.0 * eta * eta))
    return max(64, min(m, max_samples))


def _check_params(tau: float, rho: float, beta: float) -> None:
    if not 0 < tau < 1:
        raise ReproducibilityError(f"tau must lie in (0, 1), got {tau}")
    if not 0 < rho < 1:
        raise ReproducibilityError(f"rho must lie in (0, 1), got {rho}")
    if not 0 < beta < 1:
        raise ReproducibilityError(f"beta must lie in (0, 1), got {beta}")
