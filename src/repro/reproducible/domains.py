"""Finite ordered domains for reproducible quantile computation.

Section 4.2 ("Mapping to a finite domain") observes that rMedian needs a
finite, known domain: efficiencies a priori live in R>=0, but under the
paper's bit-complexity assumption they lie on a finite grid of size
2^poly(n), so ``log*|X| = O(log* n)``.

:class:`EfficiencyDomain` realizes this: a logarithmic grid with ``2^d``
points spanning ``[lo, hi]``, plus the two extreme indices absorbing 0
and +inf.  The grid is *fixed per instance family* (it depends only on
the chosen bit-width and range, not on samples), which is exactly what
cross-run reproducibility requires: both runs must round into the same
lattice.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.logstar import log_star_of_pow2
from ..errors import DomainError

__all__ = ["EfficiencyDomain"]


class EfficiencyDomain:
    """Log-spaced grid of size ``2**bits`` over ``[lo, hi]``.

    Index 0 represents every value ``<= lo`` (including efficiency 0);
    the top index represents every value ``>= hi`` (including +inf, the
    efficiency of profitable zero-weight items).

    Parameters
    ----------
    bits:
        Domain size is ``2**bits``.  The paper's analysis allows
        ``bits = poly(n)``; the default 16 gives a multiplicative grid
        step of ~0.1% over 24 decades — far finer than any tau the EPS
        machinery uses — while keeping reproducibility cheap (coarser
        grids merge nearby efficiencies into shared atoms, which is
        exactly what cross-run agreement feeds on).
    lo, hi:
        Range of efficiencies mapped injectively (up to grid resolution).
        Efficiencies of a normalized instance lie in (0, 1/w_min]; the
        defaults cover 1e-12 .. 1e12, twelve decades either side of 1.
    """

    __slots__ = ("_bits", "_lo", "_hi", "_log_lo", "_log_hi", "_size")

    def __init__(self, bits: int = 16, lo: float = 1e-12, hi: float = 1e12) -> None:
        if bits < 1 or bits > 62:
            raise DomainError(f"bits must lie in [1, 62], got {bits}")
        if not (0 < lo < hi) or not math.isfinite(hi):
            raise DomainError(f"need 0 < lo < hi < inf, got lo={lo}, hi={hi}")
        self._bits = bits
        self._lo = lo
        self._hi = hi
        self._log_lo = math.log2(lo)
        self._log_hi = math.log2(hi)
        self._size = 1 << bits

    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """Bit-width d with |X| = 2^d."""
        return self._bits

    @property
    def size(self) -> int:
        """Number of grid points |X|."""
        return self._size

    @property
    def log_star(self) -> int:
        """``log*|X|`` — drives the rMedian round schedule."""
        return log_star_of_pow2(self._bits)

    @property
    def lo(self) -> float:
        """Lower edge of the injectively-mapped range."""
        return self._lo

    @property
    def hi(self) -> float:
        """Upper edge of the injectively-mapped range."""
        return self._hi

    # ------------------------------------------------------------------
    def encode(self, value: float) -> int:
        """Map an efficiency to its grid index (clamping out-of-range)."""
        if value != value:  # NaN
            raise DomainError("cannot encode NaN")
        if value <= self._lo:
            return 0
        if value >= self._hi:
            return self._size - 1
        frac = (math.log2(value) - self._log_lo) / (self._log_hi - self._log_lo)
        idx = int(frac * (self._size - 1))
        return min(max(idx, 0), self._size - 1)

    def encode_many(self, values) -> np.ndarray:
        """Vectorized :meth:`encode` (inf and 0 handled like the scalar form)."""
        arr = np.asarray(values, dtype=float)
        if np.any(np.isnan(arr)):
            raise DomainError("cannot encode NaN")
        out = np.empty(arr.shape, dtype=np.int64)
        low_mask = arr <= self._lo
        high_mask = arr >= self._hi
        mid = ~(low_mask | high_mask)
        out[low_mask] = 0
        out[high_mask] = self._size - 1
        if np.any(mid):
            frac = (np.log2(arr[mid]) - self._log_lo) / (self._log_hi - self._log_lo)
            idx = (frac * (self._size - 1)).astype(np.int64)
            out[mid] = np.clip(idx, 0, self._size - 1)
        return out

    def decode(self, index: int) -> float:
        """Grid point value for ``index`` (the cell's canonical representative)."""
        if not 0 <= index < self._size:
            raise DomainError(f"index {index} outside [0, {self._size})")
        frac = index / (self._size - 1) if self._size > 1 else 0.0
        return 2.0 ** (self._log_lo + frac * (self._log_hi - self._log_lo))

    def resolution_at(self, value: float) -> float:
        """Multiplicative grid step near ``value`` (for error analysis)."""
        idx = self.encode(value)
        if idx >= self._size - 1:
            return 0.0
        return self.decode(idx + 1) - self.decode(idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EfficiencyDomain(bits={self._bits}, range=[{self._lo:g}, {self._hi:g}])"
