"""Alternative reproducible-quantile engine: dyadic descent.

A second, independently-constructed engine behind the same interface as
:func:`repro.reproducible.rmedian.rquantile_descent`, used by the
engine-comparison ablation and as a cross-check (two implementations
with the same contract catch each other's bugs, like the exact solvers
do).

Construction
------------
Binary search over the *fixed* dyadic midpoints of the domain.  At each
level the empirical conditional mass left of the midpoint is compared
against the running quantile target — but the comparison is softened by
a per-level randomized slack drawn from the shared seed, so a sampling
perturbation flips the branch only when the true mass sits within
O(eta) of the (randomly placed) comparison point:

* per-level slack ``s_l ~ U[-tau_l, +tau_l]``, ``tau_l = tau / (2 L)``
  where L bounds the number of levels, keeps the accumulated target
  drift below ``tau/2``;
* descent stops when the interval's empirical mass falls under a
  seed-randomized floor in ``[tau/4, tau/2]`` (same early-stop rationale
  as the grid engine: past that point conditional estimates degrade
  without improving the quantile in mass terms);
* output: the surviving interval's left endpoint — a dyadic lattice
  point, identical across runs whenever the branch decisions agree.

Compared with the grid engine: the cell lattice here is *fixed*
(midpoints), and all the randomization lives in the mass comparisons;
the grid engine randomizes the lattice and keeps comparisons sharp.
Both are valid instantiations of the randomized-rounding idea; the E7
ablation measures them side by side.
"""

from __future__ import annotations

import math

import numpy as np

from ..access.seeds import SeedChain
from ..errors import ReproducibilityError

__all__ = ["rquantile_dyadic"]


def rquantile_dyadic(
    samples,
    domain_size: int,
    seed: SeedChain,
    *,
    target: float = 0.5,
    tau: float = 0.05,
) -> int:
    """Reproducible ``target``-quantile via randomized dyadic descent.

    Same contract as
    :func:`~repro.reproducible.rmedian.rquantile_descent`; see the
    module docstring for how the construction differs.
    """
    xs = np.sort(np.asarray(samples, dtype=np.int64))
    if xs.size == 0:
        raise ReproducibilityError("rquantile_dyadic needs at least one sample")
    if domain_size < 1:
        raise ReproducibilityError(f"domain_size must be >= 1, got {domain_size}")
    if xs[0] < 0 or xs[-1] >= domain_size:
        raise ReproducibilityError(
            f"samples must lie in [0, {domain_size}); got range [{xs[0]}, {xs[-1]}]"
        )
    if not 0 <= target <= 1:
        raise ReproducibilityError(f"target quantile must lie in [0, 1], got {target}")
    if not 0 < tau <= 1:
        raise ReproducibilityError(f"tau must lie in (0, 1], got {tau}")

    levels = max(1, math.ceil(math.log2(domain_size)))
    tau_level = tau / (2.0 * levels)
    floor = seed.child("floor").uniform(tau / 4, tau / 2)
    # The initial target is randomized within the tau window, exactly as
    # in the grid engine, so adversarial mass placement at the target is
    # defused the same way.
    lo_t = max(0.0, target - tau / 2)
    hi_t = min(1.0, target + tau / 2)
    t = seed.child("theta").uniform(lo_t, hi_t)

    lo, hi = 0, domain_size
    mass = 1.0
    level = 0
    while hi - lo > 1 and mass > floor:
        mid = (lo + hi) // 2
        a = int(np.searchsorted(xs, lo, side="left"))
        b = int(np.searchsorted(xs, hi, side="left"))
        sub_size = b - a
        if sub_size == 0:
            break
        m_idx = int(np.searchsorted(xs, mid, side="left"))
        left_frac = (m_idx - a) / sub_size
        slack = seed.child(f"slack-{level}").uniform(-tau_level, tau_level)
        if t <= left_frac + slack:
            hi = mid
            denom = max(left_frac, 1e-12)
            t = min(max(t / denom, 0.0), 1.0)
            mass *= left_frac
        else:
            lo = mid
            denom = max(1.0 - left_frac, 1e-12)
            t = min(max((t - left_frac) / denom, 0.0), 1.0)
            mass *= 1.0 - left_frac
        level += 1

    return int(lo)
