"""Reproducible quantiles — Algorithm 1 (``rQuantile``) of the paper.

The paper reduces the p-quantile of a distribution D to the *median* of
a padded distribution D': halve D's mass and add atoms at -inf / +inf
with masses (1-p)/2 and p/2 (Section 4.2).  We provide:

* :func:`rquantile_padding` — the faithful reduction: materialize the
  padded sample over the extended domain ``{-inf} + X + {+inf}`` and
  call :func:`~repro.reproducible.rmedian.rmedian` on it;
* :func:`rquantile_direct` — the equivalent shortcut that runs the grid
  descent with quantile target p directly (no padding, half the
  samples' bookkeeping); property tests check the two agree up to tau.

:class:`ReproducibleQuantileEstimator` is the value-level front door
used by LCA-KP: it owns the :class:`EfficiencyDomain`, encodes float
efficiencies to grid indices, runs the reproducible engine and decodes
the answer back to an efficiency value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..access.seeds import SeedChain
from ..errors import ReproducibilityError
from .domains import EfficiencyDomain
from .rmedian import (
    practical_sample_complexity,
    rmedian,
    rquantile_descent,
    rquantile_descent_batch,
    theoretical_sample_complexity,
)

__all__ = [
    "rquantile_padding",
    "rquantile_direct",
    "ReproducibleQuantileEstimator",
]


def rquantile_padding(
    samples,
    domain_size: int,
    p: float,
    seed: SeedChain,
    *,
    tau: float = 0.05,
    branching: int = 4,
) -> int:
    """Faithful Algorithm 1: p-quantile via the padded-median reduction.

    The padded domain has ``domain_size + 2`` points: index 0 is -inf,
    indices ``1 .. domain_size`` are X shifted by one, and the top index
    is +inf.  Each of the n real samples carries D'-mass ``1/(2n)``, so
    the padding contributes ``n (1 - p)`` copies of -inf and ``n p``
    copies of +inf (rounded).  Per Theorem 4.5, the median is computed
    to accuracy ``tau / 2`` on the extended domain.

    Returns an index in the *original* domain ``[0, domain_size)``
    (sentinels, which occur only when the quantile falls off the data
    range, clamp to the nearest real point).
    """
    xs = np.asarray(samples, dtype=np.int64)
    if xs.size == 0:
        raise ReproducibilityError("rquantile_padding needs at least one sample")
    if not 0 <= p <= 1:
        raise ReproducibilityError(f"p must lie in [0, 1], got {p}")
    n = xs.size
    n_neg = int(round(n * (1 - p)))
    n_pos = int(round(n * p))
    padded = np.concatenate(
        [
            np.zeros(n_neg, dtype=np.int64),  # -inf sentinel
            xs + 1,  # shifted real samples
            np.full(n_pos, domain_size + 1, dtype=np.int64),  # +inf sentinel
        ]
    )
    out = rmedian(padded, domain_size + 2, seed, tau=tau / 2, branching=branching)
    if out == 0:
        return 0
    if out == domain_size + 1:
        return domain_size - 1
    return out - 1


def rquantile_direct(
    samples,
    domain_size: int,
    p: float,
    seed: SeedChain,
    *,
    tau: float = 0.05,
    branching: int = 4,
) -> int:
    """Direct engine call with quantile target p (no padding)."""
    return rquantile_descent(
        samples, domain_size, seed, target=p, tau=tau, branching=branching
    )


@dataclass
class ReproducibleQuantileEstimator:
    """Value-level reproducible quantiles over efficiencies.

    Parameters mirror Algorithm 1's requirements block: the target
    accuracy ``tau``, reproducibility ``rho``, failure probability
    ``beta``, and the finite domain (of size ``2**domain.bits``).

    ``method`` selects the faithful padding reduction (``"padding"``),
    the direct grid descent (``"direct"``, the default — equivalent
    output law, less bookkeeping), or the independently-constructed
    dyadic engine (``"dyadic"``, see
    :mod:`repro.reproducible.dyadic`).
    """

    domain: EfficiencyDomain = field(default_factory=EfficiencyDomain)
    tau: float = 0.05
    rho: float = 0.1
    beta: float = 0.05
    method: str = "direct"
    branching: int = 4
    vote: int = 1
    max_samples: int = 200_000

    def __post_init__(self) -> None:
        if self.method not in ("direct", "padding", "dyadic"):
            raise ReproducibilityError(f"unknown method {self.method!r}")
        if not 0 < self.tau < 1:
            raise ReproducibilityError(f"tau must lie in (0, 1), got {self.tau}")
        if not 0 < self.beta < self.rho < 1:
            raise ReproducibilityError(
                f"need 0 < beta < rho < 1 (Theorem 4.5), got beta={self.beta}, rho={self.rho}"
            )

    # ------------------------------------------------------------------
    def sample_complexity(self) -> int:
        """Calibrated number of samples (``n_rq`` in Algorithm 2 line 5)."""
        return practical_sample_complexity(
            self.tau,
            self.rho,
            self.domain.bits,
            beta=self.beta,
            branching=self.branching,
            max_samples=self.max_samples,
        )

    def theoretical_complexity(self) -> int:
        """The Theorem 4.5 bound, for reporting alongside measurements."""
        return theoretical_sample_complexity(self.tau, self.rho, self.domain.bits, beta=self.beta)

    # ------------------------------------------------------------------
    def quantile(self, values, p: float, seed: SeedChain) -> float:
        """Reproducible tau-approximate p-quantile of float ``values``.

        ``seed`` should be derived per quantile index (Algorithm 2 line
        10 calls rQuantile once per k with shared randomness); the
        caller is responsible for labelling, e.g.
        ``seed.child("rquantile").child(k)``.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ReproducibilityError("quantile needs at least one sample")
        encoded = self.domain.encode_many(arr)
        if self.vote <= 1:
            idx = self._one_call(encoded, p, seed)
        else:
            # Mode amplification: run the engine on `vote` disjoint
            # sample splits (all sharing the seed) and keep the most
            # frequent output.  The reproducibility analysis of
            # Lemma 4.9 shows a rho-reproducible call's output
            # distribution has a mode of mass >= 1 - rho; voting
            # concentrates each run on that mode, boosting exact
            # cross-run agreement at the cost of smaller per-call
            # samples.  Ties break toward the smallest index so the
            # rule stays deterministic.
            # All splits share the *same* seed (thresholds, offsets,
            # lattice): they estimate the same randomized functional on
            # independent data, so their outputs concentrate on one cell
            # and the majority recovers it.
            chunks = np.array_split(encoded, self.vote)
            outputs = [
                self._one_call(chunk, p, seed) for chunk in chunks if chunk.size > 0
            ]
            counts: dict[int, int] = {}
            for out in outputs:
                counts[out] = counts.get(out, 0) + 1
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
            idx = best[0]
        return self.domain.decode(idx)

    def _one_call(self, encoded: np.ndarray, p: float, seed: SeedChain) -> int:
        if self.method == "padding":
            return rquantile_padding(
                encoded, self.domain.size, p, seed, tau=self.tau, branching=self.branching
            )
        if self.method == "dyadic":
            from .dyadic import rquantile_dyadic

            return rquantile_dyadic(
                encoded, self.domain.size, seed, target=p, tau=self.tau
            )
        return rquantile_direct(
            encoded, self.domain.size, p, seed, tau=self.tau, branching=self.branching
        )

    def quantiles(self, values, targets, seeds) -> np.ndarray:
        """Batched :meth:`quantile`: many targets over one value array.

        Bit-identical to calling :meth:`quantile` once per
        ``(target, seed)`` pair — LCA-KP's threshold loop depends on
        that — but the values are encoded once and, for the default
        ``method="direct"`` single-vote configuration, all descents run
        in lockstep via :func:`rquantile_descent_batch`, sharing one
        sort and one ``searchsorted`` per grid level.  Other methods and
        ``vote > 1`` fall back to per-target calls (same outputs, no
        sharing).
        """
        targets = [float(p) for p in targets]
        seeds = list(seeds)
        if len(targets) != len(seeds):
            raise ReproducibilityError(
                f"got {len(seeds)} seeds for {len(targets)} targets"
            )
        if not targets:
            return np.empty(0)
        if self.method != "direct" or self.vote > 1:
            return np.asarray(
                [self.quantile(values, p, s) for p, s in zip(targets, seeds)]
            )
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ReproducibilityError("quantile needs at least one sample")
        encoded = self.domain.encode_many(arr)
        indices = rquantile_descent_batch(
            encoded,
            self.domain.size,
            seeds,
            targets,
            tau=self.tau,
            branching=self.branching,
        )
        return np.asarray([self.domain.decode(int(i)) for i in indices])

    def median(self, values, seed: SeedChain) -> float:
        """Reproducible tau-approximate median of float ``values``."""
        return self.quantile(values, 0.5, seed)

    # ------------------------------------------------------------------
    def reproducibility_rate(
        self,
        sample_factory,
        p: float,
        seed: SeedChain,
        *,
        runs: int = 20,
    ) -> float:
        """Empirical pairwise agreement rate across ``runs`` fresh samples.

        ``sample_factory(run_index)`` must return a fresh i.i.d. sample
        of values each call.  Returns the fraction of run pairs whose
        outputs are exactly equal — the empirical counterpart of
        Definition 2.5's ``1 - rho``.
        """
        if runs < 2:
            raise ReproducibilityError("need at least 2 runs to measure reproducibility")
        outputs = [self.quantile(sample_factory(r), p, seed) for r in range(runs)]
        agree = 0
        total = 0
        for i in range(runs):
            for j in range(i + 1, runs):
                total += 1
                if outputs[i] == outputs[j]:
                    agree += 1
        return agree / total
