"""Reproducible algorithms (ILPS22-style) powering the LCA's consistency.

The paper's key insight is that LCA *consistency* (same answers across
stateless runs) is the same property as learning-theoretic
*reproducibility* (Definition 2.5): same output on fresh samples under
shared internal randomness.  This package supplies the reproducible
median/quantile machinery Section 4 builds on.
"""

from .domains import EfficiencyDomain
from .dyadic import rquantile_dyadic
from .heavy_hitters import (
    HeavyHittersResult,
    heavy_hitters_sample_complexity,
    reproducible_heavy_hitters,
)
from .rmedian import (
    practical_sample_complexity,
    rmedian,
    rquantile_descent,
    theoretical_sample_complexity,
)
from .rquantile import (
    ReproducibleQuantileEstimator,
    rquantile_direct,
    rquantile_padding,
)

__all__ = [
    "EfficiencyDomain",
    "rmedian",
    "rquantile_descent",
    "rquantile_direct",
    "rquantile_padding",
    "rquantile_dyadic",
    "ReproducibleQuantileEstimator",
    "HeavyHittersResult",
    "reproducible_heavy_hitters",
    "heavy_hitters_sample_complexity",
    "practical_sample_complexity",
    "theoretical_sample_complexity",
]
