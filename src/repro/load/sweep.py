"""One open-loop load sweep from a plain config dict.

This is the public home of what used to be private CLI plumbing
(``_run_load_sweep``/``_LOAD_DEFAULTS``): the config vocabulary *is*
the ``context`` block a ``bench-load/v1`` document stores, so a
committed document fully describes its own rerun.  Three callers share
it — ``repro loadgen``, the ``obs-diff --fresh`` rerun path (via
:meth:`~repro.obs.context.RunContext.rerun`), and the suite runner's
load cells.
"""

from __future__ import annotations

from ..core.parameters import LCAParameters
from ..faults import FaultPlan, RetryPolicy
from ..knapsack.generators import generate
from ..serve import KnapsackService
from .clock import ServiceModel
from .harness import LoadHarness, bench_load_document

__all__ = ["LOAD_DEFAULTS", "run_load_sweep"]

#: Full default configuration of a load sweep; a baseline document's
#: ``context`` block overrides any subset of these.
LOAD_DEFAULTS = {
    "family": "uniform",
    "n": 2000,
    "seed": 0,
    "epsilon": 0.1,
    "lca_seed": 42,
    "rates": (50.0, 100.0, 200.0, 400.0, 800.0),
    "queries": 200,
    "arrival": "poisson",
    "workers": 2,
    "queue_cap": 256,
    "batch_max": 16,
    "clock": "virtual",
    "nonce": 0,
    "base_s": 0.002,
    "per_query_s": 0.0005,
    "jitter": 0.0,
    "fault_rate": 0.0,
    "retries": 0,
    "cap": 4_000,
    # Shared-memory instance tier (ROADMAP item: pin the n=10^7 shared
    # tier under open-loop load).  ``shared_instance`` switches the
    # service to process shards attaching one zero-copy segment;
    # ``service_workers`` > 1 shards each dispatched batch across that
    # pool (0 keeps the historical serial dispatch).
    "shared_instance": False,
    "service_workers": 0,
}


def run_load_sweep(cfg: dict) -> tuple[list[dict], dict, dict]:
    """Run one open-loop load sweep from a plain config dict.

    Unknown keys are ignored and missing keys fall back to
    :data:`LOAD_DEFAULTS`, which is what keeps pre-``RunContext``
    documents rerunnable.  Returns ``(rows, knee, document)``.
    """
    # Timeline knobs ride *outside* LOAD_DEFAULTS on purpose: they are
    # read from the raw config before the known-keys filter, and they
    # re-enter the document context only when enabled — so sampler-off
    # documents stay bit-identical to pre-timeline output.
    timeline = bool(cfg.get("timeline", False))
    timeline_tick_s = cfg.get("timeline_tick_s")
    cfg = {**LOAD_DEFAULTS, **{k: v for k, v in cfg.items() if k in LOAD_DEFAULTS}}
    inst = generate(cfg["family"], int(cfg["n"]), seed=int(cfg["seed"]))
    params = None
    if cfg["cap"]:
        params = LCAParameters.calibrated(
            float(cfg["epsilon"]), max_nrq=int(cfg["cap"]), max_m_large=int(cfg["cap"])
        )
    plan = None
    policy = None
    if float(cfg["fault_rate"]) > 0.0:
        plan = FaultPlan(
            seed=int(cfg["lca_seed"]), probe_failure_rate=float(cfg["fault_rate"])
        )
        if int(cfg["retries"]) > 0:
            policy = RetryPolicy(
                max_retries=int(cfg["retries"]), seed=int(cfg["lca_seed"])
            )
    shared = bool(cfg["shared_instance"])
    service = KnapsackService(
        inst,
        float(cfg["epsilon"]),
        seed=int(cfg["lca_seed"]),
        params=params,
        fault_plan=plan,
        retry_policy=policy,
        strict=plan is None,
        executor="process" if shared else "thread",
        shared_instance=shared,
    )
    harness = LoadHarness(
        service,
        arrival=cfg["arrival"],
        workers=int(cfg["workers"]),
        queue_cap=int(cfg["queue_cap"]),
        batch_max=int(cfg["batch_max"]),
        clock=cfg["clock"],
        service_model=ServiceModel(
            base_s=float(cfg["base_s"]),
            per_query_s=float(cfg["per_query_s"]),
            jitter=float(cfg["jitter"]),
        ),
        service_workers=int(cfg["service_workers"]),
        timeline=timeline,
        timeline_tick_s=(
            None if timeline_tick_s is None else float(timeline_tick_s)
        ),
    )
    rates = [float(r) for r in cfg["rates"]]
    try:
        rows, knee = harness.sweep(
            rates, int(cfg["queries"]), nonce=int(cfg["nonce"])
        )
    finally:
        service.close()
    for row in rows:
        row["n"] = inst.n
        row["family"] = cfg["family"]
        if shared:
            row["shared_instance"] = True
    context = {**cfg, "rates": rates, "n": inst.n}
    if timeline:
        context["timeline"] = True
        if timeline_tick_s is not None:
            context["timeline_tick_s"] = float(timeline_tick_s)
    doc = bench_load_document(rows, knee=knee, **context)
    return rows, knee, doc
