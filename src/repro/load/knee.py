"""Saturation-knee detection over an offered-rate sweep.

Open-loop queueing has a characteristic shape: below capacity the
achieved rate tracks the offered rate and tail latency is flat; past
capacity the queue grows without bound, achieved throughput pins at the
service capacity, and p99 latency departs by orders of magnitude.  The
*knee* is the lowest offered rate at which either symptom shows:

* **throughput**: achieved falls below ``sat_ratio`` of offered (the
  service can no longer keep up, or the bounded queue is shedding);
* **latency**: p99 end-to-end latency exceeds ``latency_factor`` times
  the sweep's lowest-rate p99 (queueing has taken over the tail).

Reingold-Vardi-style probe-complexity bounds predict where the knee
must sit — per-query probe cost times offered rate cannot exceed the
worker pool's probe throughput — which is what makes the detected knee
a standing regression check rather than a curiosity: a cost regression
in the warm path moves the knee left, and ``repro obs-diff`` sees the
moved tail latencies.
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["detect_knee"]


def detect_knee(
    rows: list[dict],
    *,
    sat_ratio: float = 0.9,
    latency_factor: float = 4.0,
    rate_key: str = "offered_qps",
    achieved_key: str = "achieved_qps",
    p99_key: str = "p99_latency_ms",
) -> dict:
    """Locate the saturation knee in a sweep of ``bench-load/v1`` rows.

    ``rows`` need not be sorted; they are ordered by offered rate first.
    Returns a JSON-ready verdict: ``detected``, the estimated
    ``knee_rate`` (midpoint of the last sub-saturation rate and the
    first saturated one, or the first rate itself when the sweep starts
    saturated), the triggering ``reason`` (``"throughput"`` or
    ``"latency"``), the saturated row's ``index`` in rate order, and the
    thresholds used.  An all-sub-saturation sweep returns
    ``detected=False`` with ``knee_rate=None`` — the knee lies beyond
    the swept range.
    """
    if not 0.0 < sat_ratio <= 1.0:
        raise ReproError(f"sat_ratio must lie in (0, 1], got {sat_ratio}")
    if latency_factor <= 1.0:
        raise ReproError(f"latency_factor must be > 1, got {latency_factor}")
    ordered = sorted(rows, key=lambda r: float(r[rate_key]))
    verdict = {
        "detected": False,
        "knee_rate": None,
        "reason": None,
        "index": None,
        "sat_ratio": sat_ratio,
        "latency_factor": latency_factor,
        "base_p99_ms": None,
        "rates": [float(r[rate_key]) for r in ordered],
    }
    if not ordered:
        return verdict
    base_p99 = float(ordered[0][p99_key])
    verdict["base_p99_ms"] = base_p99
    for i, row in enumerate(ordered):
        offered = float(row[rate_key])
        achieved = float(row[achieved_key])
        reason = None
        if offered > 0 and achieved < sat_ratio * offered:
            reason = "throughput"
        elif base_p99 > 0 and float(row[p99_key]) > latency_factor * base_p99:
            reason = "latency"
        if reason is not None:
            prev = float(ordered[i - 1][rate_key]) if i > 0 else offered
            verdict.update(
                detected=True,
                knee_rate=round((prev + offered) / 2.0, 4),
                reason=reason,
                index=i,
            )
            return verdict
    return verdict
