"""Clocks and service-time models for the load harness.

The harness runs in one of two clock regimes:

* **wall** — real time: arrivals are paced with ``asyncio.sleep`` and
  latencies are measured off the event loop's monotonic clock.  This is
  the honest measurement mode; its numbers are hardware-dependent.
* **virtual** — deterministic time: the same arrival schedule is
  replayed through a discrete-event simulation of the queue + worker
  pool, with per-batch service times taken from a seeded
  :class:`ServiceModel` instead of the real service.  Every timestamp
  is then a pure function of the seeds, so the emitted ``bench-load/v1``
  document is byte-identical across reruns — the property the CI
  ``load-smoke`` job diffs for, and the mode the knee-detector property
  tests run in.

:class:`VirtualClock` is the tiny monotonic state shared by the
simulation; it never sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = ["ServiceModel", "VirtualClock"]


class VirtualClock:
    """A monotonic clock that only moves when told to."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (never backward); returns ``now``."""
        if t > self._now:
            self._now = float(t)
        return self._now


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic service-time law for virtual-clock runs.

    A batch of ``b`` queries takes ``base_s + per_query_s * b`` seconds,
    optionally perturbed by a seeded multiplicative jitter uniform on
    ``[1 - jitter, 1 + jitter]``.  With the defaults a single worker
    saturates near ``1 / (base_s + per_query_s)`` ≈ 400 q/s at batch
    size 1, which puts a knee inside the CI sweep's rate range.

    The model is an M/D/c-style stand-in for the real warm-path cost —
    calibrate ``base_s``/``per_query_s`` from a wall-mode row when the
    virtual sweep should mirror measured behaviour.
    """

    base_s: float = 0.002
    per_query_s: float = 0.0005
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_query_s < 0:
            raise ReproError("service-model times must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must lie in [0, 1), got {self.jitter}")

    def batch_time(self, size: int, rng: np.random.Generator | None = None) -> float:
        """Service time for one batch of ``size`` queries."""
        t = self.base_s + self.per_query_s * int(size)
        if self.jitter and rng is not None:
            t *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return t
