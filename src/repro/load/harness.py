"""The open-loop load harness: offered load in, latency curves out.

:class:`LoadHarness` drives a :class:`~repro.serve.KnapsackService`
with a seeded arrival schedule at a fixed offered rate and records
where each query's time went.  Two clock regimes share one code shape:

* **wall** — an asyncio front-end: an arrival coroutine paces the
  schedule with ``asyncio.sleep`` and pushes into a *bounded*
  ``asyncio.Queue`` (full queue => the query is shed and counted, the
  open-loop discipline — arrivals never block on the service); worker
  coroutines drain the queue in microbatches of up to ``batch_max`` and
  dispatch into :meth:`~repro.serve.KnapsackService.answer_batch` on a
  thread pool, so slow service calls never stall the event loop or the
  arrival schedule.
* **virtual** — the identical queue discipline replayed as a
  discrete-event simulation against a seeded
  :class:`~repro.load.clock.ServiceModel`: no sleeping, no threads,
  every timestamp a pure function of the seeds.  Used by CI for
  byte-identical smoke documents and by the knee-detector tests.

A sweep over rates produces ``bench-load/v1`` rows plus a
:func:`~repro.load.knee.detect_knee` verdict;
:func:`bench_load_document` wraps them with the run's ``context`` block
so ``repro obs-diff --fresh`` can reconstruct the run from the document
alone.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from ..access.seeds import SeedChain
from ..errors import ReproError
from ..obs import runtime as _obs
from ..obs.timeline import TimelineSampler
from ..serve.degraded import DegradedAnswer
from ..serve.overload import BrownoutConfig, BrownoutController
from .arrivals import ARRIVAL_KINDS, ArrivalProcess
from .clock import ServiceModel, VirtualClock
from .knee import detect_knee
from .recorder import LatencyRecorder

__all__ = ["BENCH_LOAD_SCHEMA", "LoadHarness", "bench_load_document"]

BENCH_LOAD_SCHEMA = "bench-load/v1"

#: Virtual service-time multiplier per brownout rung.  Rung 1 answers
#: off the memoized cache (one point query, no pipeline); rungs 2-3
#: apply a precomputed greedy mask — the shed rung still drains its
#: backlog at greedy cost while refusing new admissions.
_RUNG_FACTORS = (1.0, 0.25, 0.1, 0.1)


class LoadHarness:
    """Open-loop load generator over one ``KnapsackService``.

    Parameters
    ----------
    service:
        The service under test.  Wall mode calls its real batch path;
        virtual mode only reads its configuration (``seed``, instance
        size) and simulates service time with ``service_model``.
    seed:
        Root seed for the arrival schedules (defaults to the service's
        own seed chain; the arrival streams live under the reserved
        ``"__load__"`` subtree either way, so sharing is safe).
    arrival:
        Interarrival law — see :data:`~repro.load.arrivals.ARRIVAL_KINDS`.
    workers:
        Concurrent dispatch slots (queue servers).
    queue_cap:
        Bounded-queue depth; an arrival finding it full is shed and
        counted (``dropped``), never blocked on.
    batch_max:
        Largest microbatch one worker pulls per dispatch.
    clock:
        ``"wall"`` or ``"virtual"``.
    service_model:
        Virtual-clock service-time law (default :class:`ServiceModel`).
    warm:
        Wall mode: run one untimed query first so the measured rows see
        the warm (cached) path, not a one-off cold pipeline.
    deadline_s:
        Optional per-query deadline (seconds after arrival).  A query
        whose deadline has already passed when a worker would dispatch
        it is *shed* at dispatch — counted in ``dropped`` and in the
        row's ``deadline_shed`` — instead of being served to nobody.
        Queue order means the head always has the longest wait, so a
        batch's members never outlive a head that was admitted.
    brownout:
        Optional :class:`~repro.serve.overload.BrownoutConfig`: a fresh
        :class:`~repro.serve.overload.BrownoutController` per rate
        observes ``(queue fraction, head-of-queue wait)`` at every
        dispatch and steps the degradation ladder.  Rungs >= 1 serve at
        the rung's (cheaper) service time and are recorded degraded;
        rung 3 sheds new arrivals at admission while the backlog drains
        at greedy cost.  Virtual clock only — the controller is part of
        the byte-deterministic simulation.
    service_workers:
        Wall mode: shard each dispatched microbatch across this many
        service workers (``answer_batch(..., workers=...)``).  0 (the
        default) keeps the historical serial dispatch.  This is what
        lets the shared-memory process tier carry open-loop load: each
        dispatch fans out across pool workers attaching one segment.
    timeline:
        Record a ``timeline/v1`` trajectory per rate.  Virtual clock:
        ticks sit on the deterministic ``timeline_tick_s`` grid inside
        the simulation, so the timeline replays byte-identically with
        the row it rides on.  Wall clock: an asyncio sampler coroutine
        ticks every ``timeline_tick_s`` wall seconds, and the sampler is
        activated process-globally for the run so forked service shards
        capture and ship their local ticks home (winners only).  Off by
        default — and when off, rows carry no timeline key at all, so
        existing documents stay bit-identical.
    timeline_tick_s:
        Tick grid / sampling interval; defaults per clock (0.05 virtual,
        0.25 wall).
    timeline_capacity:
        Per-rate ring bound (oldest ticks evicted, counted).
    """

    def __init__(
        self,
        service,
        *,
        seed: int | SeedChain | None = None,
        arrival: str = "poisson",
        workers: int = 2,
        queue_cap: int = 256,
        batch_max: int = 16,
        clock: str = "wall",
        service_model: ServiceModel | None = None,
        warm: bool = True,
        deadline_s: float | None = None,
        brownout: BrownoutConfig | None = None,
        service_workers: int = 0,
        timeline: bool = False,
        timeline_tick_s: float | None = None,
        timeline_capacity: int = 512,
    ) -> None:
        if arrival not in ARRIVAL_KINDS:
            raise ReproError(
                f"arrival must be one of {ARRIVAL_KINDS}, got {arrival!r}"
            )
        if clock not in ("wall", "virtual"):
            raise ReproError(f"clock must be 'wall' or 'virtual', got {clock!r}")
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ReproError(f"queue_cap must be >= 1, got {queue_cap}")
        if batch_max < 1:
            raise ReproError(f"batch_max must be >= 1, got {batch_max}")
        if deadline_s is not None and deadline_s <= 0:
            raise ReproError(f"deadline_s must be > 0, got {deadline_s}")
        if brownout is not None and clock != "virtual":
            raise ReproError(
                "brownout requires clock='virtual': the controller is part "
                "of the deterministic simulation, not a wall-clock heuristic"
            )
        if service_workers < 0:
            raise ReproError(
                f"service_workers must be >= 0, got {service_workers}"
            )
        if timeline_tick_s is not None and timeline_tick_s <= 0:
            raise ReproError(f"timeline_tick_s must be > 0, got {timeline_tick_s}")
        if timeline_capacity < 1:
            raise ReproError(
                f"timeline_capacity must be >= 1, got {timeline_capacity}"
            )
        self._timeline = bool(timeline)
        self._timeline_tick_s = (
            None if timeline_tick_s is None else float(timeline_tick_s)
        )
        self._timeline_capacity = int(timeline_capacity)
        self._deadline_s = None if deadline_s is None else float(deadline_s)
        self._brownout = brownout
        self._service_workers = int(service_workers)
        self._service = service
        if seed is None:
            seed = service.seed
        self._seed = seed if isinstance(seed, SeedChain) else SeedChain(int(seed))
        self._arrival = arrival
        self._workers = int(workers)
        self._queue_cap = int(queue_cap)
        self._batch_max = int(batch_max)
        self._clock = clock
        self._model = service_model or ServiceModel()
        self._warm = bool(warm)
        # A remote EndpointClient presents `n` directly instead of a
        # full instance object; both faces drive the same harness.
        inst = getattr(service, "instance", None)
        self._n_items = int(inst.n if inst is not None else service.n)

    # ------------------------------------------------------------------
    def run_rate(self, rate: float, queries: int, *, nonce: int = 0) -> dict:
        """Drive ``queries`` arrivals at offered ``rate`` q/s; return one
        ``bench-load/v1`` row."""
        if queries < 1:
            raise ReproError(f"queries must be >= 1, got {queries}")
        process = ArrivalProcess(
            self._seed, rate=rate, kind=self._arrival, nonce=nonce
        )
        times, indices = process.stream(queries, self._n_items)
        recorder = LatencyRecorder()
        controller = (
            BrownoutController(self._brownout) if self._brownout is not None else None
        )
        sampler = None
        previous_timeline = None
        if self._timeline:
            # One fresh ring per rate: each row carries its own
            # trajectory.  Activated globally for the run so forked
            # service shards inherit it and ship local ticks home.
            sampler = TimelineSampler(
                clock=self._clock,
                tick_s=self._timeline_tick_s,
                capacity=self._timeline_capacity,
                registry=_obs.REGISTRY,
            )
            previous_timeline = _obs.activate_timeline(sampler)
        try:
            if self._clock == "virtual":
                shed = self._run_virtual(
                    rate, times, indices, nonce, recorder, controller, sampler
                )
            else:
                if self._warm:
                    # Untimed cache prefill: the rows measure the warm path.
                    # Warm through the same dispatch shape the timed run
                    # uses — sharded batches pay a one-time *worker-side*
                    # cold cost (pool spin-up, segment attach, per-process
                    # pipeline) that a parent-side point query never touches.
                    if self._service_workers > 1:
                        self._service.answer_batch(
                            [int(i) for i in indices[: self._service_workers]],
                            nonce=nonce,
                            workers=self._service_workers,
                        )
                    else:
                        self._service.answer(int(indices[0]), nonce=nonce)
                shed = asyncio.run(
                    self._run_wall(times, indices, nonce, recorder, sampler)
                )
        finally:
            if self._timeline:
                _obs.activate_timeline(previous_timeline)
        _obs.REGISTRY.counter("load.offered").inc(recorder.offered)
        _obs.REGISTRY.counter("load.completed").inc(recorder.completed)
        if recorder.dropped:
            _obs.REGISTRY.counter("load.dropped").inc(recorder.dropped)
            _obs.record_event(
                "load.queue_full", rate=float(rate), dropped=recorder.dropped
            )
        if shed["deadline"]:
            _obs.REGISTRY.counter("overload.deadline_shed").inc(shed["deadline"])
            _obs.record_event(
                "overload.deadline_shed",
                rate=float(rate),
                queries=shed["deadline"],
                deadline_s=self._deadline_s,
            )
        if shed["brownout"]:
            _obs.REGISTRY.counter("overload.brownout_shed").inc(shed["brownout"])
            _obs.record_event(
                "overload.brownout_shed", rate=float(rate), queries=shed["brownout"]
            )
        row = recorder.row(rate=rate)
        row.update(
            mode="load",
            clock=self._clock,
            arrival=self._arrival,
            workers=self._workers,
            queue_cap=self._queue_cap,
            batch_max=self._batch_max,
        )
        if self._deadline_s is not None or self._brownout is not None:
            # Overload-governor accounting rides only on governed rows so
            # plain bench-load/v1 documents stay byte-identical.
            row.update(
                deadline_s=self._deadline_s,
                brownout=self._brownout is not None,
                deadline_shed=shed["deadline"],
                brownout_shed=shed["brownout"],
                brownout_max_level=(
                    controller.max_level_seen if controller is not None else 0
                ),
                brownout_transitions=(
                    controller.transitions if controller is not None else 0
                ),
            )
        if sampler is not None:
            # Opt-in only: sampler-off rows carry no timeline key, so
            # pre-existing documents stay bit-identical.
            row["timeline"] = sampler.fragment()
        return row

    def sweep(
        self, rates, queries: int, *, nonce: int = 0, knee_kwargs: dict | None = None
    ) -> tuple[list[dict], dict]:
        """Run one row per offered rate; return ``(rows, knee_verdict)``."""
        rows = [self.run_rate(float(r), queries, nonce=nonce) for r in rates]
        knee = detect_knee(rows, **(knee_kwargs or {}))
        return rows, knee

    # ------------------------------------------------------------------
    # Wall clock: asyncio bounded queue + worker pool
    # ------------------------------------------------------------------
    async def _run_wall(self, times, indices, nonce, recorder, sampler=None) -> dict:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._queue_cap)
        answer_batch = self._service.answer_batch
        deadline = self._deadline_s
        shed = {"deadline": 0, "brownout": 0}
        # Governor state the sampler coroutine reads between dispatches.
        inflight = [0]
        head_wait = [0.0]
        stop = asyncio.Event()

        async def sample() -> None:
            t0 = loop.time()
            while True:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=sampler.tick_s)
                except asyncio.TimeoutError:
                    pass
                sampler.tick(
                    loop.time() - t0,
                    queue_depth=queue.qsize(),
                    queue_wait_s=head_wait[0],
                    inflight=inflight[0],
                    offered=recorder.offered,
                    completed=recorder.completed,
                    dropped=recorder.dropped,
                    degraded=recorder.degraded,
                )
                if stop.is_set():
                    return

        async def arrive() -> None:
            t0 = loop.time()
            for t, idx in zip(times, indices):
                delay = t0 + float(t) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                recorder.offer()
                try:
                    queue.put_nowait((loop.time(), int(idx)))
                except asyncio.QueueFull:
                    recorder.drop()
            for _ in range(self._workers):
                await queue.put(None)

        async def work(pool: ThreadPoolExecutor) -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                batch = [item]
                while len(batch) < self._batch_max:
                    try:
                        nxt = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is None:
                        # Another worker's sentinel: hand it back.
                        queue.put_nowait(None)
                        break
                    batch.append(nxt)
                start = loop.time()
                if deadline is not None:
                    # Admission gate: already-doomed queries are shed at
                    # dispatch, not served to nobody.
                    kept = [b for b in batch if start - b[0] < deadline]
                    doomed = len(batch) - len(kept)
                    if doomed:
                        shed["deadline"] += doomed
                        for _ in range(doomed):
                            recorder.drop()
                    batch = kept
                    if not batch:
                        continue
                dispatch = partial(answer_batch, [b[1] for b in batch], nonce=nonce)
                if self._service_workers > 1:
                    dispatch = partial(dispatch, workers=self._service_workers)
                head_wait[0] = start - batch[0][0]
                inflight[0] += 1
                try:
                    report = await loop.run_in_executor(pool, dispatch)
                finally:
                    inflight[0] -= 1
                finish = loop.time()
                for (arrival, _), answer in zip(batch, report.answers):
                    recorder.record(
                        arrival,
                        start,
                        finish,
                        degraded=isinstance(answer, DegradedAnswer)
                        or bool(getattr(answer, "degraded", False)),
                    )

        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            sampler_task = (
                asyncio.ensure_future(sample()) if sampler is not None else None
            )
            try:
                await asyncio.gather(
                    arrive(), *(work(pool) for _ in range(self._workers))
                )
            finally:
                stop.set()
                if sampler_task is not None:
                    await sampler_task
        return shed

    # ------------------------------------------------------------------
    # Virtual clock: discrete-event simulation, byte-deterministic
    # ------------------------------------------------------------------
    def _run_virtual(
        self, rate, times, indices, nonce, recorder, controller=None, sampler=None
    ) -> dict:
        model = self._model
        jitter_rng = (
            self._seed.child("__load__")
            .child("service")
            .child(f"{float(rate):.9g}")
            .child(int(nonce))
            .rng()
            if model.jitter
            else None
        )
        clock = VirtualClock()
        # (free_time, slot): min-heap of when each worker next idles.
        servers = [(0.0, w) for w in range(self._workers)]
        heapq.heapify(servers)
        pending: deque[tuple[float, int]] = deque()
        deadline = self._deadline_s
        shed = {"deadline": 0, "brownout": 0}
        tick_s = sampler.tick_s if sampler is not None else 0.0
        next_grid = [0]

        def governor_tick(now: float) -> None:
            """Emit every grid tick tau = k * tick_s with tau <= now.

            Grid times are a pure function of ``tick_s`` and the seeded
            schedule, and the sampled state is read from the same
            deterministic simulation structures the dispatcher uses — so
            the timeline replays byte-identically with its row.  Each
            grid point is emitted exactly once, in order.
            """
            if sampler is None:
                return
            while True:
                tau = round(next_grid[0] * tick_s, 9)
                if tau > now + 1e-12:
                    return
                wait = 0.0
                depth = 0
                if pending:
                    head = pending[0][0]
                    if head <= tau:
                        wait = tau - head
                    depth = sum(1 for a, _ in pending if a <= tau)
                sampler.tick(
                    tau,
                    queue_depth=depth,
                    queue_wait_s=wait,
                    inflight=sum(1 for free, _ in servers if free > tau),
                    brownout_level=(
                        controller.level if controller is not None else 0
                    ),
                    offered=recorder.offered,
                    completed=recorder.completed,
                    dropped=recorder.dropped,
                    degraded=recorder.degraded,
                )
                next_grid[0] += 1

        def drain(limit: float) -> None:
            """Let workers consume the queue up to virtual time ``limit``."""
            while pending:
                free, slot = servers[0]
                start = max(free, pending[0][0])
                governor_tick(min(start, limit))
                if start >= limit:
                    return
                if deadline is not None and start - pending[0][0] >= deadline:
                    # Admission gate: the head is already doomed at its
                    # dispatch instant — shed it without occupying the
                    # worker.  FIFO order means the head always has the
                    # longest wait, so admitted batch members never
                    # outlive an admitted head.
                    pending.popleft()
                    recorder.drop()
                    shed["deadline"] += 1
                    continue
                heapq.heappop(servers)
                clock.advance_to(start)
                # The brownout controller sees exactly what a real
                # dispatcher would: occupancy and head-of-queue wait.
                level = 0
                if controller is not None:
                    level = controller.observe(
                        len(pending) / self._queue_cap, start - pending[0][0]
                    )
                batch = [pending.popleft()]
                # A real worker only sees what had arrived by dispatch.
                while (
                    len(batch) < self._batch_max
                    and pending
                    and pending[0][0] <= start
                ):
                    batch.append(pending.popleft())
                finish = start + model.batch_time(len(batch), jitter_rng) * (
                    _RUNG_FACTORS[min(level, len(_RUNG_FACTORS) - 1)]
                )
                for arrival, _idx in batch:
                    recorder.record(arrival, start, finish, degraded=level >= 1)
                heapq.heappush(servers, (finish, slot))

        for t, idx in zip(times, indices):
            t = float(t)
            recorder.offer()
            drain(t)
            governor_tick(t)
            if controller is not None and controller.level >= 3:
                # Shed rung: refuse new admissions while the backlog
                # drains (the controller keeps observing dispatches, so
                # relief steps it back down deterministically).
                recorder.drop()
                shed["brownout"] += 1
                continue
            if len(pending) >= self._queue_cap:
                recorder.drop()
            else:
                pending.append((t, int(idx)))
        drain(float("inf"))
        # Trailing ticks cover the drain-down to the last worker idle,
        # then one closing tick past it so the timeline always ends
        # with the drained end-of-run ledgers (the wall sampler's final
        # flush-on-stop gives the same guarantee).
        if sampler is not None and servers:
            governor_tick(max(free for free, _ in servers))
            governor_tick(round(next_grid[0] * tick_s, 9))
        return shed


def bench_load_document(
    rows: list[dict],
    *,
    knee: dict | None = None,
    name: str = "load_latency",
    title: str = "Open-loop load: latency and availability vs offered rate",
    **context,
) -> dict:
    """Wrap load rows (and a knee verdict) as ``bench-load/v1``.

    ``context`` records the configuration needed to reproduce the run
    (family, n, epsilon, seeds, rates, clock, ...); ``repro obs-diff
    --fresh`` reruns a baseline from exactly this block.  ``knee``
    defaults to detecting over ``rows`` directly — pass an explicit
    verdict when the document mixes a rate sweep with fixed-rate rows.
    """
    from ..obs.context import RunContext
    from ..obs.schema import BenchDocument

    if knee is None:
        knee = detect_knee(rows)
    bench = context.pop("bench", "load")
    return BenchDocument.build(
        "bench-load",
        name=name,
        title=title,
        rows=rows,
        knee=knee,
        context=RunContext(bench=bench, config=context),
        total_queries=sum(int(r.get("queries", 0)) for r in rows),
        total_completed=sum(int(r.get("completed", 0)) for r in rows),
    ).body
