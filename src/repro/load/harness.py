"""The open-loop load harness: offered load in, latency curves out.

:class:`LoadHarness` drives a :class:`~repro.serve.KnapsackService`
with a seeded arrival schedule at a fixed offered rate and records
where each query's time went.  Two clock regimes share one code shape:

* **wall** — an asyncio front-end: an arrival coroutine paces the
  schedule with ``asyncio.sleep`` and pushes into a *bounded*
  ``asyncio.Queue`` (full queue => the query is shed and counted, the
  open-loop discipline — arrivals never block on the service); worker
  coroutines drain the queue in microbatches of up to ``batch_max`` and
  dispatch into :meth:`~repro.serve.KnapsackService.answer_batch` on a
  thread pool, so slow service calls never stall the event loop or the
  arrival schedule.
* **virtual** — the identical queue discipline replayed as a
  discrete-event simulation against a seeded
  :class:`~repro.load.clock.ServiceModel`: no sleeping, no threads,
  every timestamp a pure function of the seeds.  Used by CI for
  byte-identical smoke documents and by the knee-detector tests.

A sweep over rates produces ``bench-load/v1`` rows plus a
:func:`~repro.load.knee.detect_knee` verdict;
:func:`bench_load_document` wraps them with the run's ``context`` block
so ``repro obs-diff --fresh`` can reconstruct the run from the document
alone.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from ..access.seeds import SeedChain
from ..errors import ReproError
from ..obs import runtime as _obs
from ..serve.degraded import DegradedAnswer
from .arrivals import ARRIVAL_KINDS, ArrivalProcess
from .clock import ServiceModel, VirtualClock
from .knee import detect_knee
from .recorder import LatencyRecorder

__all__ = ["BENCH_LOAD_SCHEMA", "LoadHarness", "bench_load_document"]

BENCH_LOAD_SCHEMA = "bench-load/v1"


class LoadHarness:
    """Open-loop load generator over one ``KnapsackService``.

    Parameters
    ----------
    service:
        The service under test.  Wall mode calls its real batch path;
        virtual mode only reads its configuration (``seed``, instance
        size) and simulates service time with ``service_model``.
    seed:
        Root seed for the arrival schedules (defaults to the service's
        own seed chain; the arrival streams live under the reserved
        ``"__load__"`` subtree either way, so sharing is safe).
    arrival:
        Interarrival law — see :data:`~repro.load.arrivals.ARRIVAL_KINDS`.
    workers:
        Concurrent dispatch slots (queue servers).
    queue_cap:
        Bounded-queue depth; an arrival finding it full is shed and
        counted (``dropped``), never blocked on.
    batch_max:
        Largest microbatch one worker pulls per dispatch.
    clock:
        ``"wall"`` or ``"virtual"``.
    service_model:
        Virtual-clock service-time law (default :class:`ServiceModel`).
    warm:
        Wall mode: run one untimed query first so the measured rows see
        the warm (cached) path, not a one-off cold pipeline.
    """

    def __init__(
        self,
        service,
        *,
        seed: int | SeedChain | None = None,
        arrival: str = "poisson",
        workers: int = 2,
        queue_cap: int = 256,
        batch_max: int = 16,
        clock: str = "wall",
        service_model: ServiceModel | None = None,
        warm: bool = True,
    ) -> None:
        if arrival not in ARRIVAL_KINDS:
            raise ReproError(
                f"arrival must be one of {ARRIVAL_KINDS}, got {arrival!r}"
            )
        if clock not in ("wall", "virtual"):
            raise ReproError(f"clock must be 'wall' or 'virtual', got {clock!r}")
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ReproError(f"queue_cap must be >= 1, got {queue_cap}")
        if batch_max < 1:
            raise ReproError(f"batch_max must be >= 1, got {batch_max}")
        self._service = service
        if seed is None:
            seed = service.seed
        self._seed = seed if isinstance(seed, SeedChain) else SeedChain(int(seed))
        self._arrival = arrival
        self._workers = int(workers)
        self._queue_cap = int(queue_cap)
        self._batch_max = int(batch_max)
        self._clock = clock
        self._model = service_model or ServiceModel()
        self._warm = bool(warm)
        # A remote EndpointClient presents `n` directly instead of a
        # full instance object; both faces drive the same harness.
        inst = getattr(service, "instance", None)
        self._n_items = int(inst.n if inst is not None else service.n)

    # ------------------------------------------------------------------
    def run_rate(self, rate: float, queries: int, *, nonce: int = 0) -> dict:
        """Drive ``queries`` arrivals at offered ``rate`` q/s; return one
        ``bench-load/v1`` row."""
        if queries < 1:
            raise ReproError(f"queries must be >= 1, got {queries}")
        process = ArrivalProcess(
            self._seed, rate=rate, kind=self._arrival, nonce=nonce
        )
        times, indices = process.stream(queries, self._n_items)
        recorder = LatencyRecorder()
        if self._clock == "virtual":
            self._run_virtual(rate, times, indices, nonce, recorder)
        else:
            if self._warm:
                # Untimed cache prefill: the rows measure the warm path.
                self._service.answer(int(indices[0]), nonce=nonce)
            asyncio.run(self._run_wall(times, indices, nonce, recorder))
        _obs.REGISTRY.counter("load.offered").inc(recorder.offered)
        _obs.REGISTRY.counter("load.completed").inc(recorder.completed)
        if recorder.dropped:
            _obs.REGISTRY.counter("load.dropped").inc(recorder.dropped)
            _obs.record_event(
                "load.queue_full", rate=float(rate), dropped=recorder.dropped
            )
        row = recorder.row(rate=rate)
        row.update(
            mode="load",
            clock=self._clock,
            arrival=self._arrival,
            workers=self._workers,
            queue_cap=self._queue_cap,
            batch_max=self._batch_max,
        )
        return row

    def sweep(
        self, rates, queries: int, *, nonce: int = 0, knee_kwargs: dict | None = None
    ) -> tuple[list[dict], dict]:
        """Run one row per offered rate; return ``(rows, knee_verdict)``."""
        rows = [self.run_rate(float(r), queries, nonce=nonce) for r in rates]
        knee = detect_knee(rows, **(knee_kwargs or {}))
        return rows, knee

    # ------------------------------------------------------------------
    # Wall clock: asyncio bounded queue + worker pool
    # ------------------------------------------------------------------
    async def _run_wall(self, times, indices, nonce, recorder) -> None:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._queue_cap)
        answer_batch = self._service.answer_batch

        async def arrive() -> None:
            t0 = loop.time()
            for t, idx in zip(times, indices):
                delay = t0 + float(t) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                recorder.offer()
                try:
                    queue.put_nowait((loop.time(), int(idx)))
                except asyncio.QueueFull:
                    recorder.drop()
            for _ in range(self._workers):
                await queue.put(None)

        async def work(pool: ThreadPoolExecutor) -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                batch = [item]
                while len(batch) < self._batch_max:
                    try:
                        nxt = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is None:
                        # Another worker's sentinel: hand it back.
                        queue.put_nowait(None)
                        break
                    batch.append(nxt)
                start = loop.time()
                report = await loop.run_in_executor(
                    pool,
                    partial(answer_batch, [b[1] for b in batch], nonce=nonce),
                )
                finish = loop.time()
                for (arrival, _), answer in zip(batch, report.answers):
                    recorder.record(
                        arrival,
                        start,
                        finish,
                        degraded=isinstance(answer, DegradedAnswer)
                        or bool(getattr(answer, "degraded", False)),
                    )

        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            await asyncio.gather(arrive(), *(work(pool) for _ in range(self._workers)))

    # ------------------------------------------------------------------
    # Virtual clock: discrete-event simulation, byte-deterministic
    # ------------------------------------------------------------------
    def _run_virtual(self, rate, times, indices, nonce, recorder) -> None:
        model = self._model
        jitter_rng = (
            self._seed.child("__load__")
            .child("service")
            .child(f"{float(rate):.9g}")
            .child(int(nonce))
            .rng()
            if model.jitter
            else None
        )
        clock = VirtualClock()
        # (free_time, slot): min-heap of when each worker next idles.
        servers = [(0.0, w) for w in range(self._workers)]
        heapq.heapify(servers)
        pending: deque[tuple[float, int]] = deque()

        def drain(limit: float) -> None:
            """Let workers consume the queue up to virtual time ``limit``."""
            while pending:
                free, slot = servers[0]
                start = max(free, pending[0][0])
                if start >= limit:
                    return
                heapq.heappop(servers)
                clock.advance_to(start)
                batch = [pending.popleft()]
                # A real worker only sees what had arrived by dispatch.
                while (
                    len(batch) < self._batch_max
                    and pending
                    and pending[0][0] <= start
                ):
                    batch.append(pending.popleft())
                finish = start + model.batch_time(len(batch), jitter_rng)
                for arrival, _idx in batch:
                    recorder.record(arrival, start, finish)
                heapq.heappush(servers, (finish, slot))

        for t, idx in zip(times, indices):
            t = float(t)
            recorder.offer()
            drain(t)
            if len(pending) >= self._queue_cap:
                recorder.drop()
            else:
                pending.append((t, int(idx)))
        drain(float("inf"))


def bench_load_document(
    rows: list[dict],
    *,
    knee: dict | None = None,
    name: str = "load_latency",
    title: str = "Open-loop load: latency and availability vs offered rate",
    **context,
) -> dict:
    """Wrap load rows (and a knee verdict) as ``bench-load/v1``.

    ``context`` records the configuration needed to reproduce the run
    (family, n, epsilon, seeds, rates, clock, ...); ``repro obs-diff
    --fresh`` reruns a baseline from exactly this block.  ``knee``
    defaults to detecting over ``rows`` directly — pass an explicit
    verdict when the document mixes a rate sweep with fixed-rate rows.
    """
    from ..obs.context import RunContext
    from ..obs.schema import BenchDocument

    if knee is None:
        knee = detect_knee(rows)
    bench = context.pop("bench", "load")
    return BenchDocument.build(
        "bench-load",
        name=name,
        title=title,
        rows=rows,
        knee=knee,
        context=RunContext(bench=bench, config=context),
        total_queries=sum(int(r.get("queries", 0)) for r in rows),
        total_completed=sum(int(r.get("completed", 0)) for r in rows),
    ).body
