"""Seeded open-loop arrival processes.

An open-loop run is only as reproducible as its arrival schedule, so
interarrival gaps and per-query item assignments are both derived from
the repo's :class:`~repro.access.SeedChain` under the reserved
``"__load__"`` label — the same discipline the fault plans use for
their ``"__faults__"`` subtree.  Two processes built from equal
``(seed, kind, rate, nonce)`` replay identical schedules byte for
byte, and the load subtree is disjoint from the algorithm's own
randomness, so driving the service under load never perturbs its
answers.

Three interarrival laws, in the muBench/Locust spirit:

* ``poisson`` — i.i.d. exponential gaps with mean ``1/rate`` (the
  memoryless open-loop default; burstiness stresses the queue);
* ``uniform`` — i.i.d. gaps uniform on ``[0.5/rate, 1.5/rate]``
  (same mean, bounded burstiness);
* ``constant`` — exact ``1/rate`` spacing (a deterministic D/\\*/c
  feed, the gentlest possible schedule at a given rate).
"""

from __future__ import annotations

import numpy as np

from ..access.seeds import SeedChain
from ..errors import ReproError

__all__ = ["ARRIVAL_KINDS", "ArrivalProcess"]

#: Supported interarrival laws.
ARRIVAL_KINDS = ("poisson", "uniform", "constant")


class ArrivalProcess:
    """One seeded arrival schedule at a fixed offered rate.

    Parameters
    ----------
    seed:
        Root seed (int or :class:`~repro.access.SeedChain`).  The
        process derives its streams under ``"__load__"``, so it can
        share a root with the algorithm without interference.
    rate:
        Offered arrival rate in queries per second (must be > 0).
    kind:
        One of :data:`ARRIVAL_KINDS`.
    nonce:
        Distinguishes repeated runs of the same ``(seed, rate, kind)``
        configuration — same role as the service's fresh-randomness
        nonce.

    A process is a one-shot generator: each draw advances its private
    streams.  For a replay, construct a fresh process with equal
    parameters.
    """

    __slots__ = ("rate", "kind", "_gap_rng", "_idx_rng")

    def __init__(
        self,
        seed: int | SeedChain,
        *,
        rate: float,
        kind: str = "poisson",
        nonce: int = 0,
    ) -> None:
        if kind not in ARRIVAL_KINDS:
            raise ReproError(
                f"arrival kind must be one of {ARRIVAL_KINDS}, got {kind!r}"
            )
        if not rate > 0.0:
            raise ReproError(f"arrival rate must be > 0, got {rate}")
        chain = seed if isinstance(seed, SeedChain) else SeedChain(int(seed))
        node = (
            chain.child("__load__")
            .child(kind)
            .child(f"{float(rate):.9g}")
            .child(int(nonce))
        )
        self.rate = float(rate)
        self.kind = kind
        self._gap_rng = node.child("gaps").rng()
        self._idx_rng = node.child("indices").rng()

    # ------------------------------------------------------------------
    def interarrivals(self, count: int) -> np.ndarray:
        """The next ``count`` interarrival gaps (seconds, float64)."""
        if count < 0:
            raise ReproError(f"count must be >= 0, got {count}")
        mean = 1.0 / self.rate
        if self.kind == "poisson":
            return self._gap_rng.exponential(mean, size=count)
        if self.kind == "uniform":
            return self._gap_rng.uniform(0.5 * mean, 1.5 * mean, size=count)
        return np.full(count, mean, dtype=np.float64)

    def assign_indices(self, count: int, n_items: int) -> np.ndarray:
        """The next ``count`` queried item indices, uniform on
        ``[0, n_items)`` from the process's private index stream."""
        if n_items < 1:
            raise ReproError(f"n_items must be >= 1, got {n_items}")
        return self._idx_rng.integers(n_items, size=count, dtype=np.int64)

    def stream(self, count: int, n_items: int) -> tuple[np.ndarray, np.ndarray]:
        """``(arrival_times, item_indices)`` for the next ``count``
        queries; times are cumulative seconds from the run start."""
        gaps = self.interarrivals(count)
        return np.cumsum(gaps), self.assign_indices(count, n_items)
