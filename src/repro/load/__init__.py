"""Open-loop load generation and latency observability.

The serving layer's throughput benches are **closed-loop**: each batch
is submitted as soon as the previous one returns, so the measured QPS
is the service's capacity — queueing delay is invisible by
construction.  A production claim ("heavy traffic from millions of
users") is about **open-loop** behaviour: queries arrive on their own
schedule whether or not the service is ready, latency is dominated by
queueing once the offered rate approaches capacity, and the transition
— the *saturation knee* — is the number that matters.

This package measures exactly that:

* :mod:`repro.load.arrivals` — seeded arrival processes (Poisson,
  uniform, constant interarrivals) derived from the repo's
  :class:`~repro.access.SeedChain`, so an offered-load run replays
  deterministically;
* :mod:`repro.load.recorder` — :class:`LatencyRecorder`, per-rate
  queueing/service/end-to-end latency built on the obs layer's
  log-bucket :class:`~repro.obs.metrics.Histogram`;
* :mod:`repro.load.harness` — :class:`LoadHarness`, an asyncio
  front-end (bounded queue + worker pool dispatching into
  :meth:`~repro.serve.KnapsackService.answer_batch`) plus a
  deterministic virtual-clock mode for CI, and the ``bench-load/v1``
  document builder;
* :mod:`repro.load.knee` — saturation-knee detection over a rate sweep;
* :mod:`repro.load.endpoint` — an ``asyncio``-streams endpoint
  (``repro loadgen --listen``) speaking newline-delimited JSON.

The LCA connection: Theorem 4.5 promises per-query cost independent of
``n``; under this harness that promise is *visible* as a flat
latency-vs-``n`` curve at a fixed sub-saturation rate (the committed
``BENCH_load.json`` pins it within 2x across n = 10^4..10^6).  The
lower-bound families (Theorems 3.2-3.4) appear as the opposite shape:
budget exhaustion turns into degraded answers and a measurable
availability cliff.  See ``docs/observability.md``.
"""

from .arrivals import ARRIVAL_KINDS, ArrivalProcess
from .clock import ServiceModel, VirtualClock
from .endpoint import EndpointClient, serve_endpoint
from .harness import BENCH_LOAD_SCHEMA, LoadHarness, bench_load_document
from .knee import detect_knee
from .overload_sweep import BENCH_OVERLOAD_SCHEMA, OVERLOAD_DEFAULTS, run_overload_sweep
from .recorder import LatencyRecorder
from .sweep import LOAD_DEFAULTS, run_load_sweep

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BENCH_LOAD_SCHEMA",
    "BENCH_OVERLOAD_SCHEMA",
    "EndpointClient",
    "LOAD_DEFAULTS",
    "LatencyRecorder",
    "LoadHarness",
    "OVERLOAD_DEFAULTS",
    "ServiceModel",
    "VirtualClock",
    "bench_load_document",
    "detect_knee",
    "run_load_sweep",
    "run_overload_sweep",
    "serve_endpoint",
]
