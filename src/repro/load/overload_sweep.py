"""One overload-governor sweep from a plain config dict.

The sweep grades the overload governor end to end, in two phases that
share one seeded virtual-clock simulation:

1. **Calibrate** — a plain open-loop sweep (no deadline, no brownout)
   over ``rates`` finds the saturation knee with
   :func:`~repro.load.knee.detect_knee`.  These rows carry
   ``mode="overload-base"``.
2. **Compare** — at the knee rate and at ``overload_factor`` times it,
   the governed harness runs twice: brownout **off** (deadline
   admission only, ``mode="overload-off"``) and brownout **on**
   (deadline admission plus the hysteresis controller,
   ``mode="overload-on"``).

Past the knee the Section 3 impossibility results apply at system
scale: full-quality service *cannot* keep up, so the comparison block
records two different quantities and never conflates them:

* ``availability`` (here) — *goodput*: completed / offered, degraded
  answers included.  This is what brownout buys: reason-coded partial
  quality instead of silence.
* ``full_quality`` — (completed − degraded) / offered: the fraction
  answered at honest Theorem 4.1 quality.  Past the knee this **must**
  fall below the theorem's success criterion for both variants —
  brownout must not "beat" the bound, it only degrades visibly.

Every timestamp is a pure function of the seeds, so a committed
``bench-overload/v1`` document replays byte-identically from its own
``context`` block (``repro obs-diff --fresh``; the CI
``overload-smoke`` contract).
"""

from __future__ import annotations

from ..core.parameters import LCAParameters
from ..knapsack.generators import generate
from ..serve import KnapsackService
from ..serve.overload import BrownoutConfig
from .clock import ServiceModel
from .harness import LoadHarness

__all__ = ["BENCH_OVERLOAD_SCHEMA", "OVERLOAD_DEFAULTS", "run_overload_sweep"]

BENCH_OVERLOAD_SCHEMA = "bench-overload/v1"

#: Full default configuration of an overload sweep; a baseline
#: document's ``context`` block overrides any subset of these.  A
#: single slow server (``workers=1, batch_max=1``) pins the virtual
#: capacity at ``1 / (base_s + per_query_s)`` = 400 q/s, so the default
#: rates straddle the knee and ``overload_factor`` times the knee is
#: genuinely past capacity.
OVERLOAD_DEFAULTS = {
    "family": "uniform",
    "n": 2000,
    "seed": 0,
    "epsilon": 0.1,
    "lca_seed": 42,
    "rates": (100.0, 200.0, 400.0, 800.0),
    "queries": 300,
    "arrival": "poisson",
    "workers": 1,
    "queue_cap": 256,
    "batch_max": 1,
    "clock": "virtual",
    "nonce": 0,
    "base_s": 0.002,
    "per_query_s": 0.0005,
    "jitter": 0.0,
    "cap": 4_000,
    # Governor knobs.
    "deadline_s": 0.05,
    "high_fraction": 0.5,
    "low_fraction": 0.125,
    "wait_target_s": 0.025,
    "patience": 3,
    "overload_factor": 2.0,
    "availability_floor": 0.9,
}


def _goodput(row: dict) -> dict:
    """Re-derive the overload row's headline metrics.

    The recorder's native ``availability`` excludes degraded answers —
    the right ledger for a load row, the wrong one for a brownout
    comparison, where a reason-coded degraded answer *is* the product.
    Overload rows therefore report ``availability`` = goodput
    (completed / offered) and keep the honest-quality fraction in
    ``full_quality``; ``full_quality <= availability`` always.
    """
    offered = int(row.get("queries", 0)) or 1
    completed = int(row.get("completed", 0))
    degraded = int(row.get("degraded", 0))
    row["full_quality"] = round((completed - degraded) / offered, 6)
    row["availability"] = round(completed / offered, 6)
    return row


def run_overload_sweep(cfg: dict) -> tuple[list[dict], dict, dict]:
    """Run one overload-governor sweep from a plain config dict.

    Unknown keys are ignored and missing keys fall back to
    :data:`OVERLOAD_DEFAULTS`.  Returns ``(rows, knee, document)``;
    the document's ``comparison`` block is the governed verdict at
    ``overload_factor`` times the detected knee.
    """
    # Timeline knobs ride outside OVERLOAD_DEFAULTS (read raw, before
    # the known-keys filter) so sampler-off documents keep their exact
    # pre-timeline bytes; see run_load_sweep for the same discipline.
    timeline = bool(cfg.get("timeline", False))
    timeline_tick_s = cfg.get("timeline_tick_s")
    cfg = {
        **OVERLOAD_DEFAULTS,
        **{k: v for k, v in cfg.items() if k in OVERLOAD_DEFAULTS},
    }
    inst = generate(cfg["family"], int(cfg["n"]), seed=int(cfg["seed"]))
    params = None
    if cfg["cap"]:
        params = LCAParameters.calibrated(
            float(cfg["epsilon"]), max_nrq=int(cfg["cap"]), max_m_large=int(cfg["cap"])
        )
    service = KnapsackService(
        inst, float(cfg["epsilon"]), seed=int(cfg["lca_seed"]), params=params
    )
    model = ServiceModel(
        base_s=float(cfg["base_s"]),
        per_query_s=float(cfg["per_query_s"]),
        jitter=float(cfg["jitter"]),
    )

    def harness(**overload_kwargs) -> LoadHarness:
        return LoadHarness(
            service,
            arrival=cfg["arrival"],
            workers=int(cfg["workers"]),
            queue_cap=int(cfg["queue_cap"]),
            batch_max=int(cfg["batch_max"]),
            clock=cfg["clock"],
            service_model=model,
            timeline=timeline,
            timeline_tick_s=(
                None if timeline_tick_s is None else float(timeline_tick_s)
            ),
            **overload_kwargs,
        )

    queries = int(cfg["queries"])
    nonce = int(cfg["nonce"])
    rates = [float(r) for r in cfg["rates"]]

    # Phase 1 — calibrate: plain rows locate the knee.
    base_rows, knee = harness().sweep(rates, queries, nonce=nonce)
    for row in base_rows:
        row["mode"] = "overload-base"
    knee_rate = float(knee.get("knee_rate") or max(rates))
    overload_rate = round(knee_rate * float(cfg["overload_factor"]), 6)

    # Phase 2 — compare: governed runs at and past the knee.
    deadline = float(cfg["deadline_s"])
    brownout = BrownoutConfig(
        high_fraction=float(cfg["high_fraction"]),
        low_fraction=float(cfg["low_fraction"]),
        wait_target_s=float(cfg["wait_target_s"]),
        patience=int(cfg["patience"]),
    )
    off = harness(deadline_s=deadline)
    on = harness(deadline_s=deadline, brownout=brownout)
    compare_rows: list[dict] = []
    at_overload: dict[str, dict] = {}
    for rate in (knee_rate, overload_rate):
        for mode, h in (("overload-off", off), ("overload-on", on)):
            row = _goodput(h.run_rate(rate, queries, nonce=nonce))
            row["mode"] = mode
            compare_rows.append(row)
            if rate == overload_rate:
                at_overload[mode] = row
    rows = base_rows + compare_rows
    for row in rows:
        row["n"] = inst.n
        row["family"] = cfg["family"]

    floor = float(cfg["availability_floor"])
    row_on = at_overload["overload-on"]
    row_off = at_overload["overload-off"]
    comparison = {
        "rate": overload_rate,
        "availability_on": row_on["availability"],
        "availability_off": row_off["availability"],
        "full_quality_on": row_on["full_quality"],
        "full_quality_off": row_off["full_quality"],
        "floor": floor,
        "floor_met": bool(row_on["availability"] >= floor),
        "off_below_on": bool(row_off["availability"] < row_on["availability"]),
    }
    from ..obs.context import RunContext
    from ..obs.schema import BenchDocument

    context = {**cfg, "rates": rates, "n": inst.n}
    if timeline:
        context["timeline"] = True
        if timeline_tick_s is not None:
            context["timeline_tick_s"] = float(timeline_tick_s)
    doc = BenchDocument.build(
        "bench-overload",
        name="overload_governor",
        title="Overload governor: availability and quality around the knee",
        rows=rows,
        knee=knee,
        comparison=comparison,
        context=RunContext(bench="overload", config=context),
        total_queries=sum(int(r.get("queries", 0)) for r in rows),
        total_completed=sum(int(r.get("completed", 0)) for r in rows),
    ).body
    return rows, knee, doc
