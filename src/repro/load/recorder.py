"""Per-rate latency accounting built on the obs log-bucket histograms.

A :class:`LatencyRecorder` splits each completed query's end-to-end
time into its two phases:

* **queueing** — arrival to dispatch (time spent waiting for a worker);
* **service** — dispatch to completion (time inside the service call).

End-to-end is *defined* as their sum, so the phase partition is exact
by construction — the same discipline the tracer applies to probe
counts (``sum(per-phase) == total``), here applied to time.  The
hypothesis property test in ``tests/load/test_recorder.py`` pins it.

Quantiles come from :class:`~repro.obs.metrics.Histogram` — the same
streaming geometric-bucket estimator the metrics registry uses — so a
recorder's memory is bounded by occupied buckets, not by queries, and
p50/p95/p99 carry the histogram's documented ~2% relative error.
"""

from __future__ import annotations

import math

from ..errors import ReproError
from ..obs.metrics import Histogram

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Latency, throughput, and availability accounting for one offered
    rate.

    Counts move through three gates: ``offered`` (the arrival process
    emitted the query), minus ``dropped`` (bounded queue was full) gives
    admitted; admitted queries eventually complete, ``degraded`` of them
    off the degradation ladder.  Availability is counted against
    *offered* — a query shed at the queue is just as unavailable as a
    degraded one.
    """

    def __init__(self, *, buckets_per_decade: int = 64) -> None:
        self.queueing = Histogram(
            "load.queueing_s", buckets_per_decade=buckets_per_decade
        )
        self.service = Histogram(
            "load.service_s", buckets_per_decade=buckets_per_decade
        )
        self.end_to_end = Histogram(
            "load.end_to_end_s", buckets_per_decade=buckets_per_decade
        )
        self.offered = 0
        self.dropped = 0
        self.completed = 0
        self.degraded = 0
        self._first_arrival = math.inf
        self._last_finish = -math.inf

    # ------------------------------------------------------------------
    def offer(self, n: int = 1) -> None:
        """``n`` queries emitted by the arrival process."""
        self.offered += n

    def drop(self, n: int = 1) -> None:
        """``n`` queries shed because the bounded queue was full."""
        self.dropped += n

    def record(
        self,
        arrival_s: float,
        start_s: float,
        finish_s: float,
        *,
        degraded: bool = False,
    ) -> None:
        """One completed query's life cycle timestamps (same clock).

        ``start_s`` may not precede ``arrival_s`` nor ``finish_s``
        precede ``start_s`` — a negative phase means the caller mixed
        clocks, which would silently corrupt the histograms.
        """
        queueing = start_s - arrival_s
        service = finish_s - start_s
        if queueing < 0 or service < 0:
            raise ReproError(
                "latency phases must be non-negative: "
                f"queueing={queueing:.6g}s service={service:.6g}s"
            )
        self.queueing.observe(queueing)
        self.service.observe(service)
        # Defined as the sum: the phase partition is exact, not a float
        # coincidence.
        self.end_to_end.observe(queueing + service)
        self.completed += 1
        if degraded:
            self.degraded += 1
        if arrival_s < self._first_arrival:
            self._first_arrival = arrival_s
        if finish_s > self._last_finish:
            self._last_finish = finish_s

    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """First arrival to last completion (0.0 before any record)."""
        if self.completed == 0:
            return 0.0
        return self._last_finish - self._first_arrival

    @property
    def achieved_qps(self) -> float:
        """Completed queries per second of elapsed run time."""
        elapsed = self.elapsed_s
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def availability(self) -> float:
        """Non-degraded completions over *offered* queries."""
        if self.offered == 0:
            return 0.0
        return (self.completed - self.degraded) / self.offered

    def _quantiles_ms(self, hist: Histogram) -> dict[str, float]:
        if hist.count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": 1000.0 * hist.quantile(0.50),
            "p95": 1000.0 * hist.quantile(0.95),
            "p99": 1000.0 * hist.quantile(0.99),
        }

    def row(self, *, rate: float) -> dict:
        """One ``bench-load/v1`` row for this recorder at offered
        ``rate`` (the harness adds its configuration keys on top)."""
        queue = self._quantiles_ms(self.queueing)
        e2e = self._quantiles_ms(self.end_to_end)
        return {
            "rate": float(rate),
            "queries": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "degraded": self.degraded,
            "offered_qps": float(rate),
            "achieved_qps": round(self.achieved_qps, 3),
            "availability": round(self.availability, 6),
            "elapsed_s": round(self.elapsed_s, 6),
            "p50_queueing_ms": round(queue["p50"], 4),
            "p95_queueing_ms": round(queue["p95"], 4),
            "p99_queueing_ms": round(queue["p99"], 4),
            "p50_latency_ms": round(e2e["p50"], 4),
            "p95_latency_ms": round(e2e["p95"], 4),
            "p99_latency_ms": round(e2e["p99"], 4),
        }
