"""A minimal asyncio-streams endpoint over ``KnapsackService``.

Newline-delimited JSON, one request object per line:

* ``{"op": "answer", "index": 17}`` → the answer for item 17 (plus a
  ``degraded`` flag and reason when the service fell down its ladder);
* ``{"op": "stats"}`` → the service's ``stats()`` snapshot;
* ``{"op": "ping"}`` → ``{"ok": true, "op": "ping"}``.

Service calls run in a thread pool via ``run_in_executor``, so a slow
cold-path pipeline never blocks the event loop — the same discipline
the load harness's wall-clock mode uses.  This exists so ``repro
loadgen --listen`` can expose a real socket for external load tools
(wrk-style clients, or another ``repro`` process); the in-process
harness does not go through it.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from ..errors import ReproError
from ..obs import runtime as _obs
from ..obs.export import jsonable
from ..serve.degraded import DegradedAnswer

__all__ = ["handle_request", "serve_endpoint"]


def handle_request(service, request: dict, *, nonce: int = 0) -> dict:
    """Dispatch one decoded request against ``service`` (blocking).

    Pure request→response logic, split out from the socket plumbing so
    tests can cover the protocol without opening a port.  Errors come
    back as ``{"ok": false, "error": ...}`` rather than raising: a bad
    request must not take the endpoint down.
    """
    op = request.get("op")
    try:
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": jsonable(service.stats())}
        if op == "answer":
            index = request.get("index")
            if not isinstance(index, int) or isinstance(index, bool):
                raise ReproError(f"'answer' needs an integer 'index', got {index!r}")
            answer = service.answer(index, nonce=int(request.get("nonce", nonce)))
            if isinstance(answer, DegradedAnswer):
                payload = answer.to_dict()
            else:
                payload = {
                    "index": answer.index,
                    "include": bool(answer.include),
                    "reason": answer.reason,
                    "degraded": False,
                }
            return {"ok": True, "op": "answer", "answer": jsonable(payload)}
        raise ReproError(f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}


async def serve_endpoint(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    nonce: int = 0,
    ready: asyncio.Event | None = None,
    max_workers: int = 4,
):
    """Serve newline-delimited JSON requests until cancelled.

    Returns the ``asyncio.AbstractServer``; the bound address is in its
    ``sockets``.  ``ready`` (if given) is set once the socket is
    listening — test harnesses wait on it instead of polling.
    """
    loop = asyncio.get_running_loop()
    pool = ThreadPoolExecutor(max_workers=max_workers)

    async def on_client(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        _obs.REGISTRY.counter("endpoint.connections").inc()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"bad json: {exc}"}
                else:
                    response = await loop.run_in_executor(
                        pool, partial(handle_request, service, request, nonce=nonce)
                    )
                _obs.REGISTRY.counter("endpoint.requests").inc()
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(on_client, host, port)
    if ready is not None:
        ready.set()
    return server
