"""A minimal asyncio-streams endpoint over ``KnapsackService``.

Newline-delimited JSON, one request object per line:

* ``{"op": "answer", "index": 17}`` → the answer for item 17 (plus a
  ``degraded`` flag and reason when the service fell down its ladder);
* ``{"op": "batch", "indices": [3, 5], "nonce": 9}`` → one answer per
  index, served through the service's batch path (one amortized
  pipeline, not one per index);
* ``{"op": "config"}`` → the service's identity (``n``, ``epsilon``,
  ``seed``) so a remote client can build arrival schedules without a
  local copy of the instance;
* ``{"op": "stats"}`` → the service's ``stats()`` snapshot;
* ``{"op": "metrics"}`` → the process-global registry's
  ``metrics-snapshot/v2`` maps (what ``repro top`` and the Prometheus
  exposition poll);
* ``{"op": "timeline"}`` → the endpoint's live ``timeline/v1``
  fragment (``null`` unless the server was started with a sampler);
* ``{"op": "ping"}`` → ``{"ok": true, "op": "ping"}``.

Service calls run in a thread pool via ``run_in_executor``, so a slow
cold-path pipeline never blocks the event loop — the same discipline
the load harness's wall-clock mode uses.  This exists so ``repro
loadgen --listen`` can expose a real socket for external load tools
(wrk-style clients, or another ``repro`` process); the matching
in-repo client is :class:`EndpointClient`, which presents the same
``answer``/``answer_batch`` face as :class:`~repro.serve.KnapsackService`
so :class:`~repro.load.LoadHarness` can drive a remote service over the
wire (``repro loadgen --connect``).
"""

from __future__ import annotations

import asyncio
import json
import socket as _socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from ..errors import ReproError
from ..obs import runtime as _obs
from ..obs.export import jsonable
from ..serve.degraded import DegradedAnswer

__all__ = [
    "EndpointClient",
    "RemoteAnswer",
    "RemoteBatchReport",
    "handle_request",
    "serve_endpoint",
]


def _answer_payload(answer) -> dict:
    """One answer as wire JSON, degraded or not."""
    if isinstance(answer, DegradedAnswer):
        return answer.to_dict()
    return {
        "index": answer.index,
        "include": bool(answer.include),
        "reason": answer.reason,
        "degraded": False,
    }


def handle_request(service, request: dict, *, nonce: int = 0, sampler=None) -> dict:
    """Dispatch one decoded request against ``service`` (blocking).

    Pure request→response logic, split out from the socket plumbing so
    tests can cover the protocol without opening a port.  Errors come
    back as ``{"ok": false, "error": ...}`` rather than raising: a bad
    request must not take the endpoint down.  ``sampler`` is the
    server's live :class:`~repro.obs.timeline.TimelineSampler`, if any
    — the ``timeline`` op answers ``null`` without one.
    """
    op = request.get("op")
    try:
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": jsonable(service.stats())}
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "metrics": jsonable(_obs.REGISTRY.snapshot()),
            }
        if op == "timeline":
            return {
                "ok": True,
                "op": "timeline",
                "timeline": jsonable(sampler.fragment()) if sampler is not None else None,
            }
        if op == "config":
            return {
                "ok": True,
                "op": "config",
                "n": int(service.instance.n),
                "epsilon": float(service.epsilon),
                "seed_digest": service.seed.digest().hex()[:16],
            }
        if op == "answer":
            index = request.get("index")
            if not isinstance(index, int) or isinstance(index, bool):
                raise ReproError(f"'answer' needs an integer 'index', got {index!r}")
            answer = service.answer(index, nonce=int(request.get("nonce", nonce)))
            return {"ok": True, "op": "answer", "answer": jsonable(_answer_payload(answer))}
        if op == "batch":
            indices = request.get("indices")
            if not isinstance(indices, list) or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in indices
            ):
                raise ReproError(
                    f"'batch' needs a list of integer 'indices', got {indices!r}"
                )
            report = service.answer_batch(
                indices, nonce=int(request.get("nonce", nonce))
            )
            return {
                "ok": True,
                "op": "batch",
                "answers": [jsonable(_answer_payload(a)) for a in report.answers],
                "degraded": int(report.degraded),
            }
        raise ReproError(f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}


async def serve_endpoint(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    nonce: int = 0,
    ready: asyncio.Event | None = None,
    max_workers: int = 4,
    timeline: bool = False,
    timeline_tick_s: float | None = None,
):
    """Serve newline-delimited JSON requests until cancelled.

    Returns the ``asyncio.AbstractServer``; the bound address is in its
    ``sockets``.  ``ready`` (if given) is set once the socket is
    listening — test harnesses wait on it instead of polling.

    With ``timeline=True`` a wall-clock
    :class:`~repro.obs.timeline.TimelineSampler` ticks in the
    background (interval ``timeline_tick_s``, default 0.25 s) and the
    ``{"op": "timeline"}`` request serves its live fragment; the
    sampler and its task are stashed on the returned server object
    (``_repro_timeline``) so callers can read or cancel them.
    """
    loop = asyncio.get_running_loop()
    pool = ThreadPoolExecutor(max_workers=max_workers)
    sampler = None
    live = {"inflight": 0, "offered": 0, "completed": 0}
    if timeline:
        from ..obs.timeline import TimelineSampler

        sampler = TimelineSampler(
            clock="wall", tick_s=timeline_tick_s, registry=_obs.REGISTRY
        )

    async def sample_forever() -> None:
        t0 = loop.time()
        while True:
            await asyncio.sleep(sampler.tick_s)
            sampler.tick(
                loop.time() - t0,
                queue_depth=live["inflight"],
                inflight=live["inflight"],
                offered=live["offered"],
                completed=live["completed"],
            )

    async def on_client(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        _obs.REGISTRY.counter("endpoint.connections").inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError) as exc:
                    # A line past the stream limit: the tail of the line
                    # is unframed, so answer once and drop the client —
                    # resyncing mid-line would misparse the remainder.
                    _obs.REGISTRY.counter("endpoint.oversized_lines").inc()
                    writer.write(
                        json.dumps(
                            {
                                "ok": False,
                                "error": f"oversized request line: {exc}",
                                "reason_code": "oversized-line",
                            },
                            sort_keys=True,
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise json.JSONDecodeError(
                            "request must be a JSON object", line.decode(errors="replace"), 0
                        )
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    _obs.REGISTRY.counter("endpoint.bad_requests").inc()
                    response = {
                        "ok": False,
                        "error": f"bad json: {exc}",
                        "reason_code": "bad-json",
                    }
                else:
                    live["offered"] += 1
                    live["inflight"] += 1
                    try:
                        response = await loop.run_in_executor(
                            pool,
                            partial(
                                handle_request,
                                service,
                                request,
                                nonce=nonce,
                                sampler=sampler,
                            ),
                        )
                    finally:
                        live["inflight"] -= 1
                    live["completed"] += 1
                _obs.REGISTRY.counter("endpoint.requests").inc()
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # Mid-request disconnect: the client is gone, the server
            # task must not crash — account for it and tear down.
            _obs.REGISTRY.counter("endpoint.disconnects").inc()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    server = await asyncio.start_server(on_client, host, port)
    if sampler is not None:
        # Keep strong references on the server so the tick task isn't
        # garbage-collected while the endpoint serves.
        server._repro_timeline = sampler  # type: ignore[attr-defined]
        server._repro_timeline_task = asyncio.ensure_future(  # type: ignore[attr-defined]
            sample_forever()
        )
    if ready is not None:
        ready.set()
    return server


# ----------------------------------------------------------------------
# Client side: the service face, over a socket
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RemoteAnswer:
    """One answer decoded off the wire (shape-compatible with
    :class:`~repro.core.LCAAnswer` as far as the load harness reads it)."""

    index: int
    include: bool
    reason: str
    degraded: bool = False


@dataclass(frozen=True)
class RemoteBatchReport:
    """The slice of a ``BatchReport`` that crosses the wire."""

    answers: tuple[RemoteAnswer, ...]
    degraded: int = 0


class EndpointClient:
    """Blocking NDJSON client presenting the ``KnapsackService`` face.

    Speaks the :func:`handle_request` protocol over one TCP connection
    and exposes exactly what :class:`~repro.load.LoadHarness` needs
    from a "service": ``n``, ``answer`` and ``answer_batch``.  The
    harness's wall-clock workers call it from several pool threads, so
    requests serialize on an internal lock — the endpoint itself
    parallelizes across *connections*, and measured latency includes
    the wire, which is the point of driving it from a second process.

    Instance identity (``n``, ``epsilon``, the seed digest) is fetched
    from the server's ``config`` op at connect time, so the client
    never needs a local copy of the instance.
    """

    def __init__(self, host: str, port: int, *, timeout_s: float = 30.0) -> None:
        self._host = str(host)
        self._port = int(port)
        self._timeout_s = float(timeout_s)
        self._lock = threading.Lock()
        self._connect()
        config = self.request({"op": "config"})
        self.n = int(config["n"])
        self.epsilon = float(config["epsilon"])
        self.seed_digest = str(config.get("seed_digest", ""))

    def _connect(self) -> None:
        self._sock = _socket.create_connection(
            (self._host, self._port), timeout=self._timeout_s
        )
        self._file = self._sock.makefile("rwb")

    def _round_trip(self, data: bytes) -> bytes:
        self._file.write(data)
        self._file.flush()
        return self._file.readline()

    def request(self, payload: dict) -> dict:
        """One round trip; raises :class:`ReproError` on a protocol error.

        A half-closed socket (the server restarted, or an idle
        connection was reaped) gets exactly one reconnect-and-resend —
        every op in the protocol is idempotent against a deterministic
        service, so the retry is safe.  A second failure is real and
        propagates.
        """
        data = json.dumps(payload).encode() + b"\n"
        with self._lock:
            try:
                line = self._round_trip(data)
            except (BrokenPipeError, ConnectionResetError, OSError):
                line = b""
            if not line:
                _obs.REGISTRY.counter("endpoint.client_reconnects").inc()
                self.close()
                self._connect()
                line = self._round_trip(data)
        if not line:
            raise ReproError("endpoint closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ReproError(
                f"endpoint error for op {payload.get('op')!r}: "
                f"{response.get('error')}"
            )
        return response

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def stats(self) -> dict:
        return dict(self.request({"op": "stats"})["stats"])

    def metrics(self) -> dict:
        """The server's live ``metrics-snapshot/v2`` registry maps."""
        return dict(self.request({"op": "metrics"})["metrics"])

    def timeline(self) -> dict | None:
        """The server's live ``timeline/v1`` fragment (``None`` when the
        endpoint runs without a sampler)."""
        return self.request({"op": "timeline"}).get("timeline")

    def answer(self, index: int, *, nonce: int = 0) -> RemoteAnswer:
        payload = self.request({"op": "answer", "index": int(index), "nonce": int(nonce)})
        return self._decode(payload["answer"])

    def answer_batch(self, indices, *, nonce: int = 0, **kwargs) -> RemoteBatchReport:
        if kwargs:
            # A silently swallowed kwarg (workers=, deadline_s=, ...)
            # would make a remote run *look* like a local one while
            # measuring something else entirely.
            raise ReproError(
                f"EndpointClient.answer_batch got unsupported kwarg(s) "
                f"{sorted(kwargs)}; the wire protocol carries only "
                f"'indices' and 'nonce'"
            )
        payload = self.request(
            {"op": "batch", "indices": [int(i) for i in indices], "nonce": int(nonce)}
        )
        return RemoteBatchReport(
            answers=tuple(self._decode(a) for a in payload["answers"]),
            degraded=int(payload.get("degraded", 0)),
        )

    @staticmethod
    def _decode(payload: dict) -> RemoteAnswer:
        return RemoteAnswer(
            index=int(payload["index"]),
            include=bool(payload["include"]),
            reason=str(payload.get("reason", "")),
            degraded=bool(payload.get("degraded", False)),
        )

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "EndpointClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
