"""The IKY12 constant-time OPT-*value* approximation.

Ito, Kiyoshima and Yoshida's algorithm — the paper's starting point
(Section 1.1, "Technical overview") — approximates the *value* of an
optimal Knapsack solution from weighted samples alone:

1. sample large items (coupon collector, Lemma 4.2) => M;
2. sample small-item efficiencies and build an equally partitioning
   sequence => EPS;
3. construct the constant-size instance I~ from M and the EPS;
4. solve I~ *optimally* (it has O(1/eps^2) items) and output
   ``OPT(I~) - eps``, a (1, 6 eps)-approximation of OPT(I)
   (Lemma 4.4).

The implementation reuses the LCA-KP pipeline for steps 1-3 (they are
the same construction) and an exact solver for step 4.  Note what it
does NOT give you: per-item answers about the original instance — the
gap the paper's LCA closes.  Bench E9 measures the value guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..access.seeds import SeedChain
from ..core.lca_kp import LCAKP, PipelineResult
from ..core.parameters import LCAParameters
from ..errors import SolverError
from ..knapsack.instance import KnapsackInstance
from ..knapsack.solvers import half_approximation, solve_exact

__all__ = ["ValueEstimate", "IKYValueApproximator"]


@dataclass(frozen=True)
class ValueEstimate:
    """The value approximation plus its provenance.

    ``exact`` records whether OPT(I~) was solved to optimality; on the
    rare I~ that defeats branch-and-bound within its node limit, the
    estimator falls back to the 1/2-approximation on I~ and flags it
    here (the value is then a lower estimate).
    """

    value: float  # OPT(I~) - eps, the (1, 6 eps)-approximation
    opt_tilde: float  # optimum of the constructed I~
    epsilon: float
    exact: bool
    pipeline: PipelineResult


class IKYValueApproximator:
    """Constant-query estimator of the optimal Knapsack value.

    Parameters mirror :class:`~repro.core.LCAKP`: a weighted sampler,
    epsilon, and a seed.  (No per-item query oracle is needed — the
    value algorithm never looks at individual items by index, which is
    exactly why it is not an LCA.)
    """

    def __init__(
        self,
        sampler,
        epsilon: float,
        seed: int | SeedChain,
        *,
        params: LCAParameters | None = None,
    ) -> None:
        # Reuse the LCA pipeline with a null oracle: estimate() never
        # issues point queries.
        self._lca = LCAKP(sampler, _NullOracle(), epsilon, seed, params=params)
        self._epsilon = epsilon

    def estimate(self, *, nonce: int | None = None) -> ValueEstimate:
        """Run steps 1-4 and return the value estimate."""
        pipeline = self._lca.run_pipeline(nonce=nonce)
        tilde = pipeline.simplified
        exact = True
        if tilde.n == 0:
            opt_tilde = 0.0
        else:
            inst = KnapsackInstance(
                [it.profit for it in tilde.items],
                # Constructed representatives may individually exceed K;
                # clamp for the model invariant — an over-heavy item can
                # never be packed, so the optimum is unaffected.
                [min(it.weight, tilde.capacity) for it in tilde.items],
                tilde.capacity,
                normalize=False,
                validate=False,
            )
            try:
                opt_tilde = solve_exact(inst, node_limit=500_000).value
            except SolverError:
                opt_tilde = half_approximation(inst).value
                exact = False
        return ValueEstimate(
            value=opt_tilde - self._epsilon,
            opt_tilde=opt_tilde,
            epsilon=self._epsilon,
            exact=exact,
            pipeline=pipeline,
        )


class _NullOracle:
    """Point-query oracle that must never be consulted."""

    def query(self, i: int):  # pragma: no cover - defensive
        raise SolverError("the IKY value approximator makes no point queries")

    @property
    def cost_counter(self) -> int:
        """Never charges anything (CostMeter conformance)."""
        return 0
