"""IKY12: the constant-time Knapsack value approximation (substrate)."""

from .value_approx import IKYValueApproximator, ValueEstimate

__all__ = ["IKYValueApproximator", "ValueEstimate"]
