"""Timeline sampler overhead on the fixed-rate wall row.

The live introspection plane only earns its keep if watching the
service does not bend the service: with the wall-clock
:class:`~repro.obs.timeline.TimelineSampler` ticking in the
background, the warm serving path's p50 latency at the standard
200 q/s wall rate must stay within 5% of the unsampled baseline.

Both measurements use the same service, the same seeded arrival
schedule, and best-of-3 sweeps (the flat-latency discipline from
``bench_load_latency``: the claim is about the sampler, not about
background load on the bench box).  The verdict lands in
``BENCH_observability.json`` as a ``sampler_overhead`` block whose
arithmetic ``validate_bench_observability`` re-checks — a doctored
overhead number fails schema validation, which is the CI tripwire.
"""

from conftest import emit_json, run_once

from repro.core.parameters import LCAParameters
from repro.knapsack import generate
from repro.load import LoadHarness
from repro.serve import KnapsackService

RATE = 200.0
QUERIES = 600
SWEEPS = 3
N = 100_000
BUDGET_FRAC = 0.05


def _quietest(harness, sweeps=SWEEPS):
    """Best-of-``sweeps`` run: max availability, then lowest p50."""
    return min(
        (harness.run_rate(RATE, QUERIES) for _ in range(sweeps)),
        key=lambda r: (-r["availability"], r["p50_latency_ms"]),
    )


def _measure():
    params = LCAParameters.calibrated(0.1, max_nrq=4_000, max_m_large=4_000)
    inst = generate("uniform", N, seed=0)
    service = KnapsackService(
        inst, 0.1, seed=42, params=params, cache_capacity=8
    )
    baseline = _quietest(
        LoadHarness(service, seed=7, clock="wall", workers=2)
    )
    sampled = _quietest(
        LoadHarness(service, seed=7, clock="wall", workers=2, timeline=True)
    )
    return baseline, sampled


def test_obs_sampler_overhead(benchmark):
    baseline, sampled = run_once(benchmark, _measure)
    fragment = sampled.pop("timeline")
    overhead = round(
        sampled["p50_latency_ms"] / baseline["p50_latency_ms"] - 1.0, 6
    )
    block = {
        "rate": RATE,
        "baseline_p50_latency_ms": baseline["p50_latency_ms"],
        "sampled_p50_latency_ms": sampled["p50_latency_ms"],
        "overhead_frac": overhead,
        "budget_frac": BUDGET_FRAC,
        "within_budget": bool(overhead <= BUDGET_FRAC),
    }
    rows = []
    for mode, row in (("baseline", baseline), ("sampled", sampled)):
        rows.append(
            {
                "mode": mode,
                "rate": RATE,
                "queries": QUERIES,
                "availability": row["availability"],
                "p50_latency_ms": row["p50_latency_ms"],
                "p99_latency_ms": row["p99_latency_ms"],
                "timeline_ticks": fragment["count"] if mode == "sampled" else 0,
            }
        )
    rows.append(
        {
            "mode": "verdict",
            "rate": RATE,
            "queries": 2 * QUERIES,
            "availability": 1.0,
            "p50_latency_ms": 0.0,
            "p99_latency_ms": 0.0,
            "timeline_ticks": fragment["count"],
            "overhead_frac": overhead,
            "budget_frac": BUDGET_FRAC,
            "within_budget": block["within_budget"],
        }
    )
    emit_json(
        "E_obs_sampler_overhead",
        rows,
        "Timeline sampler overhead at the 200 q/s wall row",
        extra_entry={"sampler_overhead": block},
    )
    assert fragment["count"] >= 1, "wall sampler never ticked"
    assert block["within_budget"], (
        f"sampler overhead {overhead:+.1%} exceeds the "
        f"{BUDGET_FRAC:.0%} budget"
    )
