"""E2 — Theorem 3.3: no sublinear LCA for any alpha-approximation.

Same reduction skeleton as E1 with the planted profit beta < alpha.
The table shows (a) the semantic equivalence ("{s_n} is alpha-approx
iff OR(x)=0") verified per alpha, and (b) the success-vs-budget curve
being *identical across alphas* — approximation slack buys nothing,
which is exactly the theorem's point.
"""

from collections import defaultdict

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm33_approx_lower_bound


def test_thm33_lower_bound(benchmark):
    rows = run_once(
        benchmark,
        exp_thm33_approx_lower_bound,
        alphas=(1.0, 0.5, 0.1, 0.01),
        m=1024,
        trials=1200,
    )
    emit_json(
        "E2_thm33",
        rows,
        "E2 (Theorem 3.3): the reduction for a grid of alphas",
    )
    # The load-bearing equivalence holds for every alpha.
    assert all(row["semantics_ok"] for row in rows)
    # The theoretical curve is alpha-independent: group by budget and
    # check all alphas share one value.
    by_budget = defaultdict(set)
    for row in rows:
        by_budget[row["budget"]].add(round(row["success_theory"], 12))
    assert all(len(vals) == 1 for vals in by_budget.values())
    # Sub-linear budgets stay far below the 2/3 criterion.
    for row in rows:
        if row["budget"] <= 1024 // 10:
            assert row["success_emp"] < 0.62
