"""E6 — Theorem 4.1 / Lemma 4.10: per-query cost is independent of n.

The LCA's cost per answered query is |R| + |Q| weighted samples (plus
one point query), a function of eps and the domain only; the full-read
baseline under plain query access pays n queries per answer.  The table
shows the LCA line flat across a 64x range of n while the baseline
grows linearly — the crossover where locality starts paying for itself
is visible directly.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm41_query_scaling


def test_thm41_query_scaling(benchmark):
    rows = run_once(
        benchmark,
        exp_thm41_query_scaling,
        ns=(600, 2400, 9600, 38400, 600_000),
        epsilon=0.05,
    )
    emit_json(
        "E6_thm41_scaling",
        rows,
        "E6 (Lemma 4.10): per-query cost, LCA-KP vs. full-read baseline",
    )
    costs = [row["lca_cost_per_query"] for row in rows]
    # Flat in n: the extremes differ by under 30% across a 1000x n range.
    assert max(costs) <= 1.3 * min(costs)
    # The baseline is exactly linear, so the cost ratio collapses with n.
    ratios = [row["ratio"] for row in rows]
    assert ratios[0] / ratios[-1] > 100
    # Past the crossover (n above the eps-driven budget, here ~290k),
    # the LCA is sublinear in absolute terms as well.
    assert rows[-1]["sublinear"]
