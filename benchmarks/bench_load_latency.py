"""Open-loop load: latency under offered load, and the saturation knee.

Two measurements in one committed document:

1. **Flat-latency-vs-n (wall clock).**  The warm serving path answers a
   point query off the cached pipeline, so its cost is a function of
   the calibrated parameters — *not* of the instance size (Theorem
   4.5's independence of ``n``, measured as a latency).  We drive the
   service at one fixed sub-saturation rate across n = 10^4 -> 10^6 and
   assert the p99 end-to-end latency stays flat within 2x.

2. **Saturation knee (virtual clock).**  A deterministic discrete-event
   sweep over offered rates locates the knee where queueing takes over
   — the open-loop shadow of the Section 3 lower bounds: past the
   worker pool's probe throughput the service *must* shed, degrade, or
   let the tail explode.  Virtual timestamps are a pure function of the
   seeds, so this half of the document is byte-reproducible and is
   exactly what ``repro obs-diff`` reruns from the committed context
   block (the wall rows surface as unmatched rows, reported but never
   compared across hardware).

Writes ``benchmarks/results/LOAD_latency.{txt,json}`` via the shared
conftest plumbing and the top-level ``BENCH_load.json``
(``bench-load/v1``) that the CI load-smoke job validates and diffs.
"""

import json
import pathlib

from conftest import emit_json, run_once

from repro.load import LOAD_DEFAULTS, run_load_sweep
from repro.core.parameters import LCAParameters
from repro.knapsack import generate
from repro.load import LoadHarness, bench_load_document
from repro.obs.schema import validate_bench_load
from repro.serve import KnapsackService

BENCH_LOAD_PATH = pathlib.Path(__file__).parent.parent / "BENCH_load.json"

WALL_RATE = 200.0
# p99 over a few hundred samples is one scheduler hiccup away from the
# 2x band; 600 queries per row keeps the tail an actual quantile, and
# each row keeps the quietest of a few sweeps — the flat-latency claim
# is about the service, not about background load on a (possibly
# single-core) bench box.
WALL_QUERIES = 600
WALL_SWEEPS = 3
WALL_SIZES = (10_000, 100_000, 1_000_000)


def _quietest(harness, sweeps=WALL_SWEEPS):
    """Best-of-``sweeps`` run: max availability, then lowest p99."""
    return min(
        (harness.run_rate(WALL_RATE, WALL_QUERIES) for _ in range(sweeps)),
        key=lambda r: (-r["availability"], r["p99_latency_ms"]),
    )
SHARED_WALL_SIZE = 10_000_000


def _wall_rows():
    """Fixed-rate wall-clock rows across the n-axis (warm path)."""
    params = LCAParameters.calibrated(0.1, max_nrq=4_000, max_m_large=4_000)
    rows = []
    for n in WALL_SIZES:
        inst = generate("uniform", n, seed=0)
        service = KnapsackService(
            inst, 0.1, seed=42, params=params, cache_capacity=8
        )
        harness = LoadHarness(service, seed=7, clock="wall", workers=2)
        row = _quietest(harness)
        row["n"] = n
        row["family"] = "uniform"
        rows.append(row)
    return rows


def _shared_wall_row():
    """The shared-memory tier under load: n = 10^7 off one segment.

    Process shards attach the instance via ``SharedInstanceStore``
    instead of each pickling a 10^7-item copy, so the warm serving
    path stays affordable at an instance size 10x past the thread
    rows.  Same fixed sub-saturation rate, so the row rides the same
    flat-latency story (process dispatch adds IPC, hence it is not
    held to the thread rows' 2x band).

    Process sharding pays ~100ms of IPC per dispatched batch, so the
    shared tier runs with bigger microbatches (``batch_max=64``) — the
    row records the knob; at the thread rows' ``batch_max=16`` the
    per-batch overhead alone saturates the 200 q/s offered rate.
    """
    params = LCAParameters.calibrated(0.1, max_nrq=4_000, max_m_large=4_000)
    inst = generate("uniform", SHARED_WALL_SIZE, seed=0)
    service = KnapsackService(
        inst, 0.1, seed=42, params=params, cache_capacity=8,
        executor="process", shared_instance=True,
    )
    try:
        harness = LoadHarness(
            service, seed=7, clock="wall", workers=2, service_workers=2,
            batch_max=64,
        )
        row = _quietest(harness, sweeps=2)
    finally:
        service.close()
    row["n"] = SHARED_WALL_SIZE
    row["family"] = "uniform"
    row["shared_instance"] = True
    return row


def _virtual_sweep():
    """The deterministic rate sweep ``obs-diff --fresh`` replays."""
    return run_load_sweep(dict(LOAD_DEFAULTS))


def test_load_latency(benchmark):
    wall_rows, shared_row, (virtual_rows, knee, _) = run_once(
        benchmark, lambda: (_wall_rows(), _shared_wall_row(), _virtual_sweep())
    )

    shown = [
        {
            k: r[k]
            for k in (
                "clock", "n", "offered_qps", "achieved_qps", "completed",
                "dropped", "availability", "p50_latency_ms",
                "p99_queueing_ms", "p99_latency_ms",
            )
            if k in r
        }
        for r in wall_rows + [shared_row] + virtual_rows
    ]
    emit_json(
        "LOAD_latency",
        shown,
        "Open-loop load: flat wall-clock latency vs n, virtual knee sweep",
    )

    # The committed document: wall rows ride along, the context block is
    # the *virtual* sweep configuration so the document reruns itself.
    doc = bench_load_document(
        virtual_rows + wall_rows + [shared_row],
        knee=knee,
        **{**LOAD_DEFAULTS, "rates": [float(r) for r in LOAD_DEFAULTS["rates"]]},
    )
    validate_bench_load(doc)
    BENCH_LOAD_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )

    # Acceptance 1: Theorem 4.5 as a latency — sub-saturation p99 flat
    # within 2x while n grows 100x.
    tails = [r["p99_latency_ms"] for r in wall_rows]
    assert min(tails) > 0, wall_rows
    assert max(tails) <= 2.0 * min(tails), wall_rows
    # The fixed rate really was sub-saturation: nothing shed, nothing
    # degraded, at every n.
    for r in wall_rows:
        assert r["completed"] == WALL_QUERIES and r["dropped"] == 0, r
        assert r["availability"] == 1.0, r

    # Acceptance 1b: the shared tier holds availability at n = 10^7
    # too — the instance got 10x bigger than the largest thread row,
    # the serving behavior did not change.
    assert shared_row["completed"] == WALL_QUERIES, shared_row
    assert shared_row["dropped"] == 0, shared_row
    assert shared_row["availability"] == 1.0, shared_row
    assert shared_row["shared_instance"] is True

    # Acceptance 2: the virtual sweep crosses its modelled capacity and
    # the detector finds the knee.
    assert knee["detected"], knee
    assert knee["reason"] in ("throughput", "latency")
