"""Shared plumbing for the benchmark suite.

Each bench runs one DESIGN.md experiment (E1-E11) exactly once under
pytest-benchmark (the experiments are statistical sweeps, not
microbenchmarks — wall-clock is reported for orientation, the payload
is the printed table).  Tables are also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them
verbatim without relying on captured stdout.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.tables import format_row_dicts

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(name: str, rows, title: str) -> str:
    """Render, print and persist an experiment table."""
    table = format_row_dicts(rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print("\n" + table)
    return table


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Where the rendered tables land."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
