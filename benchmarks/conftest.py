"""Shared plumbing for the benchmark suite.

Each bench runs one DESIGN.md experiment (E1-E11) exactly once under
pytest-benchmark (the experiments are statistical sweeps, not
microbenchmarks — wall-clock is reported for orientation, the payload
is the printed table).  Tables are written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them
verbatim without relying on captured stdout; :func:`emit_json`
additionally writes a machine-readable ``bench-result/v1`` document to
``benchmarks/results/<name>.json`` and rolls the run's telemetry
(wall-clock, oracle queries, weighted samples, batch-size histogram)
into the top-level ``BENCH_observability.json`` summary
(``bench-observability/v1``) — the perf trajectory the ROADMAP's
scaling PRs measure themselves against.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.analysis.tables import format_row_dicts
from repro.obs.export import jsonable, write_json
from repro.obs.runtime import REGISTRY

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_observability.json"

#: Telemetry captured by the most recent :func:`run_once` call.
_LAST_RUN: dict = {"wall_clock_s": 0.0, "total_queries": 0, "total_samples": 0}


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture.

    Also records the run's wall-clock and the oracle-query / weighted-
    sample deltas from the global metrics registry, so a following
    :func:`emit_json` can attach honest resource telemetry to the
    experiment's output.
    """
    queries_before = REGISTRY.counter("oracle.queries").value
    samples_before = REGISTRY.counter("sampler.samples").value
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _LAST_RUN.update(
        wall_clock_s=time.perf_counter() - start,
        total_queries=REGISTRY.counter("oracle.queries").value - queries_before,
        total_samples=REGISTRY.counter("sampler.samples").value - samples_before,
    )
    return result


def emit(name: str, rows, title: str) -> str:
    """Render, print and persist an experiment table."""
    table = format_row_dicts(rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print("\n" + table)
    return table


def emit_json(name: str, rows, title: str, extra_entry: dict | None = None) -> str:
    """Like :func:`emit`, plus machine-readable telemetry.

    Writes ``results/<name>.json`` (``bench-result/v1``) and merges this
    experiment's entry into the top-level ``BENCH_observability.json``
    (``bench-observability/v1``).  Resource numbers come from the last
    :func:`run_once` call; the batch-size histogram is the process-
    cumulative ``sampler.batch_size`` snapshot (documented as such in
    docs/observability.md).  ``extra_entry`` adds extra keys to the
    summary entry (e.g. the ``sampler_overhead`` verdict block, whose
    arithmetic ``validate_bench_observability`` enforces).
    """
    table = emit(name, rows, title)
    document = {
        "schema": "bench-result/v1",
        "name": name,
        "title": title,
        "rows": jsonable(list(rows)),
        "wall_clock_s": _LAST_RUN["wall_clock_s"],
        "total_queries": _LAST_RUN["total_queries"],
        "total_samples": _LAST_RUN["total_samples"],
    }
    write_json(RESULTS_DIR / f"{name}.json", document)

    if SUMMARY_PATH.exists():
        try:
            summary = json.loads(SUMMARY_PATH.read_text())
        except json.JSONDecodeError:
            summary = {}
    else:
        summary = {}
    if summary.get("schema") != "bench-observability/v1":
        summary = {"schema": "bench-observability/v1", "experiments": {}}
    summary["experiments"][name] = {
        "title": title,
        "wall_clock_s": _LAST_RUN["wall_clock_s"],
        "total_queries": _LAST_RUN["total_queries"],
        "total_samples": _LAST_RUN["total_samples"],
        "sample_batch_histogram": REGISTRY.histogram("sampler.batch_size").snapshot(),
    }
    if extra_entry:
        summary["experiments"][name].update(jsonable(extra_entry))
    write_json(SUMMARY_PATH, summary)
    return table


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Where the rendered tables land."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
