"""E15 — footnote 3: why the per-query failure must scale as O(1/q).

Definition 2.2's footnote: an LCA expected to answer q queries should
set its per-query failure probability to O(1/q), so a union bound makes
all answers consistent w.h.p.  This bench measures the union bound in
action: q queries, each answered by an independent stateless run at
*fixed* per-answer agreement, succeed together with probability that
decays geometrically in q — matching the (per-answer)^q prediction.
The practical consequence is the same as the footnote's: to serve more
queries from one seed epoch at a given confidence, buy more per-answer
consistency (samples / coarser domain / tighter rho), proportionally to
log of the query volume.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_footnote3_query_scaling


def test_footnote3_union_bound(benchmark):
    rows = run_once(
        benchmark,
        exp_footnote3_query_scaling,
        query_counts=(1, 5, 20, 80),
        trials=20,
    )
    emit_json(
        "E15_footnote3",
        rows,
        "E15 (footnote 3): all-queries-consistent rate vs. query count",
    )
    rates = [r["all_consistent_rate"] for r in rows]
    # Monotone decay in q (weakly, given 20-trial noise)...
    assert rates[0] >= rates[-1]
    assert rates[-1] < rates[0] - 0.3  # and a substantial drop by q = 80
    # ...tracking the geometric prediction from the per-answer rate.
    for row in rows:
        assert row["all_consistent_rate"] == (
            __import__("pytest").approx(row["geometric_prediction"], abs=0.25)
        )
    # The per-answer agreement itself is high — the decay is purely the
    # union bound, not poor per-answer behaviour.
    assert rows[0]["per_answer_agreement"] > 0.9
