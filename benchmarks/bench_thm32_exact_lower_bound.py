"""E1 — Theorem 3.2: no sublinear LCA for exact Knapsack.

Regenerates the quantitative content of the theorem via the Figure 1
reduction: the best achievable success probability of deciding "is s_n
in the optimal solution?" as a function of the query budget, on the
hard input distribution.  The paper's claim manifests as (a) the
success curve matching ``1/2 + q/(2m)`` exactly, and (b) the budget
needed for 2/3 success growing linearly with n.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm32_or_lower_bound
from repro.lowerbounds.decision_tree import (
    best_strategy_value,
    enumerate_all_strategies_or,
    optimal_or_success_exact,
)
from repro.lowerbounds.or_reduction import queries_needed_for_success


def test_thm32_exact_verification(benchmark):
    """The closed-form curve is certified two independent exact ways:
    Bayes DP over knowledge states (any m), and exhaustive enumeration
    of ALL deterministic decision trees (small m) — Yao's principle,
    executed."""

    def verify():
        rows = []
        for m, q in ((2, 1), (4, 2), (5, 2)):
            best, count = enumerate_all_strategies_or(m, q)
            rows.append(
                {
                    "m": m,
                    "q": q,
                    "strategies_enumerated": count,
                    "best_over_all_trees": float(best),
                    "closed_form": float(best_strategy_value(m, q)),
                    "dp_value": float(optimal_or_success_exact(m, q)),
                }
            )
        return rows

    rows = run_once(benchmark, verify)
    emit_json(
        "E1b_thm32_exact",
        rows,
        "E1b (Theorem 3.2): exhaustive decision-tree verification",
    )
    for row in rows:
        assert row["best_over_all_trees"] == row["closed_form"] == row["dp_value"]


def test_thm32_lower_bound(benchmark):
    rows = run_once(
        benchmark,
        exp_thm32_or_lower_bound,
        ns=(64, 256, 1024, 4096),
        trials=1200,
    )
    emit_json(
        "E1_thm32",
        rows,
        "E1 (Theorem 3.2): optimal success vs. query budget on the OR reduction",
    )
    # Empirical curves must agree with the closed form everywhere.
    for row in rows:
        assert abs(row["success_emp"] - row["success_theory"]) < 0.05, row
    # 2/3 success is only reached at budgets >= ~n/3 (linear threshold).
    for row in rows:
        if row["meets_2/3"]:
            assert row["budget"] >= queries_needed_for_success(row["n"] - 1) - 2
    # And the threshold scales linearly across the n sweep.
    thresholds = {n: queries_needed_for_success(n - 1) for n in (64, 4096)}
    assert thresholds[4096] / thresholds[64] > 50
