"""E5 — Theorem 4.1 (consistency): cross-run agreement, per family.

Lemma 4.9's claim in measurable form: stateless runs sharing a seed
answer according to one solution with probability >= 1 - eps.  The
table reports per-item unanimity and mean pairwise agreement over 6
fresh runs, plus how many runs derived bitwise-identical pipelines
(a stricter diagnostic than answer agreement).

The per-family spread is the paper's log*|X| phenomenon made visible:
families whose small-item efficiencies cluster into atoms agree
perfectly; continuous-efficiency families pay for exact-equality
reproducibility in samples (see also E7 and the E10 ablation).
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm41_consistency


def test_thm41_consistency(benchmark):
    rows = run_once(
        benchmark,
        exp_thm41_consistency,
        n=1500,
        epsilon=0.05,
        runs=6,
        probes=40,
    )
    emit_json(
        "E5_thm41_consistency",
        rows,
        "E5 (Theorem 4.1): cross-run answer agreement, eps=0.05, 6 runs",
    )
    for row in rows:
        # Pairwise agreement meets the 1 - eps target on every family.
        assert row["pairwise_agreement"] >= row["target_1_minus_eps"] - 0.02, row
    # The designed-for families are perfectly unanimous.
    by_family = {r["family"]: r for r in rows}
    assert by_family["planted_lsg"]["unanimity"] >= 0.95
    assert by_family["efficiency_tiers"]["unanimity"] >= 0.95
