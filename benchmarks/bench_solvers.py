"""E11 — Solver baselines: cross-checks and genuine microbenchmarks.

Unlike E1-E10 (statistical sweeps), the solver benches are classic
pytest-benchmark timings: the classical algorithms the paper's analysis
leans on (greedy, the 1/2-approximation, fractional relaxation, FPTAS,
exact search), timed per call on a common workload, with agreement
assertions as a by-product.
"""

import pytest
from conftest import emit_json, run_once

from repro.knapsack import generators as g
from repro.knapsack.solvers import (
    branch_and_bound,
    fptas,
    fractional_upper_bound,
    half_approximation,
    meet_in_middle,
    prefix_greedy,
    solve_exact,
)


@pytest.fixture(scope="module")
def medium_instance():
    return g.uniform(400, seed=17)


@pytest.fixture(scope="module")
def small_instance():
    return g.uniform(26, seed=17)


def test_prefix_greedy_speed(benchmark, medium_instance):
    result = benchmark(prefix_greedy, medium_instance)
    assert result.weight <= medium_instance.capacity + 1e-9


def test_half_approximation_speed(benchmark, medium_instance):
    result = benchmark(half_approximation, medium_instance)
    assert result.value >= 0.5 * fractional_upper_bound(medium_instance) - 0.5


def test_fractional_bound_speed(benchmark, medium_instance):
    bound = benchmark(fractional_upper_bound, medium_instance)
    assert bound > 0


def test_fptas_speed(benchmark, small_instance):
    result = benchmark(fptas, small_instance, 0.1)
    assert result.value >= 0.9 * solve_exact(small_instance).value - 1e-9


def test_branch_and_bound_speed(benchmark, small_instance):
    result = benchmark(branch_and_bound, small_instance)
    assert result.exact


def test_meet_in_middle_speed(benchmark, small_instance):
    result = benchmark(meet_in_middle, small_instance)
    assert result.exact


def test_solver_agreement_table(benchmark, small_instance):
    """One summary table: every solver's value on the same instance."""

    def run():
        inst = small_instance
        opt = solve_exact(inst).value
        rows = []
        for name, fn in (
            ("prefix_greedy", prefix_greedy),
            ("half_approximation", half_approximation),
            ("fptas(0.1)", lambda i: fptas(i, 0.1)),
            ("branch_and_bound", branch_and_bound),
            ("meet_in_middle", meet_in_middle),
        ):
            res = fn(inst)
            rows.append(
                {
                    "solver": name,
                    "value": res.value,
                    "ratio_to_opt": res.value / opt,
                    "items": len(res.indices),
                    "exact": res.exact,
                }
            )
        rows.append(
            {
                "solver": "fractional_bound",
                "value": fractional_upper_bound(inst),
                "ratio_to_opt": fractional_upper_bound(inst) / opt,
                "items": -1,
                "exact": False,
            }
        )
        return rows

    rows = run_once(benchmark, run)
    emit_json("E11_solvers", rows, "E11: solver agreement on uniform n=26")
    by = {r["solver"]: r for r in rows}
    assert by["branch_and_bound"]["value"] == pytest.approx(
        by["meet_in_middle"]["value"]
    )
    assert by["half_approximation"]["ratio_to_opt"] >= 0.5
    assert by["fractional_bound"]["ratio_to_opt"] >= 1.0
