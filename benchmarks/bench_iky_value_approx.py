"""E9 — Lemma 4.4 / IKY12: the constant-query OPT-value approximation.

The substrate the positive result builds on: sample, construct I~,
solve it exactly, report OPT(I~) - eps.  The lemma promises this is a
(1, 6 eps)-approximation of OPT(I); the table shows measured errors per
epsilon, against an exact branch-and-bound reference.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_iky_value


def test_iky_value(benchmark):
    rows = run_once(
        benchmark,
        exp_iky_value,
        n=400,
        epsilons=(0.05, 0.1),
        runs=3,
    )
    emit_json(
        "E9_iky_value",
        rows,
        "E9 (Lemma 4.4): IKY value estimate vs. exact OPT",
    )
    for row in rows:
        assert row["within_6eps"], row
    # The reference optimum was exact at this instance size.
    assert all(row["opt_exact"] for row in rows)
