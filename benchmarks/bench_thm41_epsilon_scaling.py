"""E14 — Lemma 4.10, the epsilon axis: per-query cost vs. accuracy.

Complements E6 (cost flat in n) with the other variable: cost grows as
a polynomial in 1/eps.  The table shows three sizing tiers for the same
structure — the samples actually drawn (capped calibrated defaults),
the uncapped calibrated formula, and the verbatim Theorem 4.5 bound —
making explicit how far apart "what theory guarantees" and "what
practice needs" sit, and that both share the poly(1/eps) shape.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm41_epsilon_scaling


def test_thm41_epsilon_scaling(benchmark):
    rows = run_once(
        benchmark,
        exp_thm41_epsilon_scaling,
        epsilons=(0.2, 0.1, 0.05, 0.025),
        n=4000,
    )
    emit_json(
        "E14_epsilon_scaling",
        rows,
        "E14 (Lemma 4.10): per-query cost vs. epsilon, three sizing tiers",
    )
    # Measured cost grows monotonically as epsilon shrinks...
    costs = [r["measured_cost_per_query"] for r in rows]
    assert costs == sorted(costs)
    # ...driven by the coupon term's ~1/eps^2 growth (until its cap).
    m_larges = [r["m_large"] for r in rows]
    assert m_larges == sorted(m_larges)
    assert m_larges[2] > 30 * m_larges[0]
    # The uncapped formula dominates the capped one, the Thm 4.5 bound
    # dominates everything: three ordered tiers of the same structure.
    for r in rows:
        assert r["n_rq_capped"] <= r["uncapped_calibrated_nrq"]
        assert r["uncapped_calibrated_nrq"] <= r["thm45_theoretical_nrq"]
