"""E4 — Theorem 4.1 (approximation): p(C) vs. the (1/2, 6 eps) bound.

For each workload family: run the full LCA-KP pipeline, materialize the
solution C it answers according to (MAPPING-GREEDY), and compare its
profit against the reference optimum.  The theorem's claim is
``p(C) >= OPT/2 - 6 eps``; the measured ratios on realistic families
sit far above it (typically 0.7-0.9 of OPT).

Known measured exception (documented in EXPERIMENTS.md): families whose
small items share a *single* efficiency atom (subset-sum-like) have no
equally partitioning sequence at all, and the algorithm degenerates to
its large-item component — the guarantee stays technically satisfied
because 6 eps dwarfs OPT/2 at these epsilons, but the solution is
trivial.  ``default_families`` therefore spans both regimes.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm41_approximation


def test_thm41_approximation(benchmark):
    rows = run_once(
        benchmark,
        exp_thm41_approximation,
        n=1500,
        epsilon=0.05,
        runs=3,
    )
    emit_json(
        "E4_thm41_approx",
        rows,
        "E4 (Theorem 4.1): solution value vs. the (1/2, 6 eps) bound, eps=0.05",
    )
    for row in rows:
        assert row["feasible"], f"{row['family']}: C was infeasible"
        assert row["meets_bound"], f"{row['family']}: bound violated: {row}"
    # On the designed-for families the ratio beats 1/2 outright.
    strong = {r["family"]: r for r in rows}
    for family in ("planted_lsg", "efficiency_tiers", "uniform"):
        assert strong[family]["ratio"] >= 0.5, strong[family]
