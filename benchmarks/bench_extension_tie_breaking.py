"""E12 — Extension bench: stochastic tie-breaking on degenerate instances.

The base algorithm's threshold rule provably cannot split an efficiency
atom, so on subset-sum-like instances (all small items at one
efficiency) it returns the trivial large-item-only solution.  The
tie-breaking extension (``repro.core.tie_breaking``, NOT in the paper)
uses per-item shared-seed coins to include a budgeted fraction of the
cut band.  This bench measures what that buys and what it costs:

* solution value recovered on degenerate families (vs. ~0 for base);
* empirical feasibility rate of the stochastic rule across many runs;
* no regression on non-degenerate families.
"""

import numpy as np
from conftest import emit_json, run_once

from repro.access.oracle import QueryOracle
from repro.access.weighted_sampler import WeightedSampler
from repro.core.lca_kp import LCAKP
from repro.core.mapping_greedy import mapping_greedy
from repro.core.parameters import LCAParameters
from repro.knapsack import generators as g
from repro.knapsack.solvers import fractional_upper_bound


def _tie_breaking_experiment(runs: int = 8, n: int = 1000, epsilon: float = 0.1):
    params = LCAParameters.calibrated(epsilon, max_nrq=30_000, max_m_large=30_000)
    rows = []
    for family, kwargs in (
        ("subset_sum", {}),
        ("weakly_correlated", {"spread": 0.02}),  # near-degenerate
        ("planted_lsg", {"epsilon": epsilon}),
        ("efficiency_tiers", {"tiers": 8}),
    ):
        inst = g.generate(family, n, seed=11, **kwargs)
        ub = fractional_upper_bound(inst)
        results = {}
        for mode in (False, True):
            lca = LCAKP(
                WeightedSampler(inst),
                QueryOracle(inst),
                epsilon,
                seed=5,
                params=params,
                tie_breaking=mode,
            )
            values, feasible = [], 0
            for r in range(runs):
                solution = mapping_greedy(inst, lca.run_pipeline(nonce=500 + r).rule)
                values.append(inst.profit_of(solution))
                feasible += inst.weight_of(solution) <= inst.capacity + 1e-9
            results[mode] = (float(np.mean(values)), feasible / runs)
        rows.append(
            {
                "family": family,
                "opt_upper": ub,
                "base_value": results[False][0],
                "ext_value": results[True][0],
                "base_feasible_rate": results[False][1],
                "ext_feasible_rate": results[True][1],
                "recovery": results[True][0] - results[False][0],
            }
        )
    return rows


def test_tie_breaking_extension(benchmark):
    rows = run_once(benchmark, _tie_breaking_experiment)
    emit_json(
        "E12_tie_breaking",
        rows,
        "E12 (extension): stochastic tie-breaking on degenerate families",
    )
    by = {r["family"]: r for r in rows}
    # The motivating case: degenerate subset-sum recovers real value.
    assert by["subset_sum"]["base_value"] < 0.05
    assert by["subset_sum"]["ext_value"] > 0.2
    # The base rule is always feasible; the extension stays feasible
    # empirically (stochastic guarantee, measured).
    for row in rows:
        assert row["base_feasible_rate"] == 1.0
        assert row["ext_feasible_rate"] == 1.0, row
    # Never a regression: the extension only adds items; on families
    # where the base threshold is active it stands down entirely.
    for row in rows:
        assert row["ext_value"] >= row["base_value"] - 1e-9
