"""Cold-pipeline latency: columnar block path vs per-object path.

The cold path — a full Algorithm 2 run on a cache miss — used to
materialize one ``Sample`` object per weighted draw.  The columnar
rewrite (``SampleBlock``) keeps the draws as parallel numpy columns end
to end: large-item discovery is a boolean mask + first-occurrence
dedup, the q-sample efficiencies are one masked ``efficiency_array``
slice, and band assignment in the EPS checker is a single
``np.searchsorted``.  Cost accounting is unchanged — a block of ``m``
draws still bills exactly ``m`` IKY12 samples, charged once per block.

``cold_pipeline_rows`` *verifies before it times*: for every nonce the
two paths must produce equal signatures, equal ``samples_used`` and
equal answers on a probe set, else it raises instead of reporting.

Acceptance line: the block path must clear 5x the object path's cold
latency at n=10^5-scale sample volumes (the calibrated eps=0.1
parameters draw ~190k samples per cold query).

Writes ``benchmarks/results/COLD_pipeline.{txt,json}`` via the shared
conftest plumbing and the top-level ``BENCH_cold.json``
(``bench-result/v1``) that the CI cold-smoke job validates.
"""

import pathlib

from conftest import emit_json, run_once

from repro.knapsack import generate
from repro.obs.export import write_json
from repro.serve.bench import bench_cold_document, cold_pipeline_rows

BENCH_COLD_PATH = pathlib.Path(__file__).parent.parent / "BENCH_cold.json"


def test_cold_pipeline(benchmark):
    inst = generate("planted_lsg", 20_000, seed=0)
    rows = run_once(
        benchmark,
        cold_pipeline_rows,
        inst,
        epsilon=0.1,
        seed=7,
        queries=5,
    )
    emit_json(
        "COLD_pipeline",
        rows,
        "Cold pipeline: columnar block path vs object path (verified bit-identical)",
    )
    write_json(BENCH_COLD_PATH, bench_cold_document(rows))

    by = {r["mode"]: r for r in rows}
    block = by["block_path"]
    # cold_pipeline_rows already raised unless every nonce was verified
    # bit-identical (signatures, answers, samples_used); the row records it.
    assert block["verified_bit_identical"] is True
    # Identical query-complexity accounting on both timed passes.
    assert block["samples"] == by["object_path"]["samples"]
    assert block["blocks"] == by["object_path"]["blocks"]
    # The headline acceptance ratio: >= 5x at ~190k draws per cold query.
    assert block["speedup"] >= 5.0, rows
