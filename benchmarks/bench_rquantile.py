"""E7 — Theorems 2.7/4.5: rMedian/rQuantile reproducibility and accuracy.

Measures, per distribution shape and sample size: the exact-equality
agreement rate across 10 fresh-sample runs sharing a seed, and the
achieved quantile position of the modal output.  The shape contrast is
the point: atomic distributions agree perfectly at tiny sample sizes,
continuous ones climb toward agreement only as samples grow — the
practical face of the (3/tau^2)^(log*|X|) sample complexity (and of the
ILPS22 lower bound that makes some domain-size dependence unavoidable).
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_rquantile_reproducibility


def test_rquantile_reproducibility(benchmark):
    rows = run_once(
        benchmark,
        exp_rquantile_reproducibility,
        sample_sizes=(2_000, 20_000, 120_000),
        runs=10,
    )
    emit_json(
        "E7_rquantile",
        rows,
        "E7 (Theorem 4.5): rQuantile agreement rate and accuracy, per engine",
    )
    by = {(r["engine"], r["distribution"], r["samples"]): r for r in rows}
    for engine in ("direct", "dyadic"):
        # Atomic distributions: perfect agreement already at small m.
        assert by[(engine, "atomic", 2_000)]["agreement"] == 1.0
        assert by[(engine, "atomic", 120_000)]["agreement"] == 1.0
        # Continuous distributions: agreement improves with samples.
        for dist in ("lognormal", "uniform"):
            assert (
                by[(engine, dist, 120_000)]["agreement"]
                >= by[(engine, dist, 2_000)]["agreement"] - 0.1
            )
    # Accuracy: every modal output is a valid approximate median,
    # regardless of engine — the cross-check the two constructions give.
    for row in rows:
        assert row["within_tau"], row
