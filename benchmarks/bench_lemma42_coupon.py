"""E8 — Lemma 4.2: the coupon-collector guarantee of weighted sampling.

The lemma: ``ceil(6 delta^-1 (log delta^-1 + 1))`` weighted samples see
every item of profit >= delta with probability >= 5/6.  We build the
adversarial shape (many items sitting exactly at the threshold), draw
exactly the lemma's sample count, and measure the collection rate.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_lemma42_coupon


def test_lemma42_coupon(benchmark):
    rows = run_once(
        benchmark,
        exp_lemma42_coupon,
        deltas=(0.2, 0.1, 0.05),
        n=2000,
        trials=150,
    )
    emit_json(
        "E8_lemma42",
        rows,
        "E8 (Lemma 4.2): collect-all-heavy-items success at the lemma's m",
    )
    for row in rows:
        assert row["meets_guarantee"], row
        # The sample count grows as delta shrinks (the 1/delta log factor).
    ms = [row["samples_m"] for row in rows]
    assert ms == sorted(ms)
