"""E3 — Theorem 3.4: no sublinear LCA for maximal-feasible Knapsack.

Runs the paper's two-query protocol (ask s_i, then s_j; grade against
the set of maximal solutions) over the hard distribution, sweeping the
probing budget.  The theorem's regime is visible directly: at budget
n/11 the error probability sits near 1/2 — far above the 1/5 the
theorem allows — and only a *linear* budget (0.6 n for the canonical
strategy) pushes it below 1/5.
"""

from conftest import emit_json, run_once

from repro.analysis.experiments import exp_thm34_maximal_lower_bound
from repro.lowerbounds.maximal_hard import budget_for_error


def test_thm34_lower_bound(benchmark):
    rows = run_once(
        benchmark,
        exp_thm34_maximal_lower_bound,
        ns=(64, 256, 1024),
        trials=1200,
    )
    emit_json(
        "E3_thm34",
        rows,
        "E3 (Theorem 3.4): maximal-feasibility error vs. probe budget",
    )
    for row in rows:
        # Empirical error tracks the closed form.
        assert abs(row["error_emp"] - row["error_theory"]) < 0.06, row
        # The theorem's statement: below n/11 queries, error far above 1/5.
        if row["budget"] <= row["n"] / 11:
            assert row["error_emp"] > 0.2
    # The error-1/5 budget scales linearly in n.
    assert budget_for_error(1024) / budget_for_error(64) > 10
