"""E10 — Ablations: what the reproducible machinery actually buys.

Two ablations on the paper's design choices:

1. **Naive vs. reproducible quantiles.**  Replace rQuantile with the
   plain empirical quantile (same samples, no shared-seed rounding) and
   measure the cross-run exact-agreement rate of the resulting EPS
   thresholds.  This is the Section 1.1 discussion made quantitative:
   "this random sampling will lead to inconsistent answers."

2. **Domain resolution (the log*|X| dial).**  Sweep the efficiency
   domain's bit width and measure answer unanimity vs. solution quality
   — coarse grids collapse genuinely distinct efficiencies (quality
   loss on spread families), fine grids make exact agreement
   sample-hungry (consistency loss).  The calibrated default (12 bits)
   is the measured compromise.
"""

import numpy as np
from conftest import emit_json, run_once

from repro.access.seeds import SeedChain
from repro.analysis.experiments import exp_ablation_domain_bits
from repro.reproducible.domains import EfficiencyDomain
from repro.reproducible.rquantile import ReproducibleQuantileEstimator


def _naive_vs_reproducible(runs: int = 10, m: int = 20_000):
    """Ablation 1: exact-agreement rate of a single median estimate.

    Three estimators x two distribution shapes:

    * ``naive`` — the plain empirical median.  Trivially reproducible on
      atomic data (the median IS an atom) and *never* exactly equal
      across runs on continuous data;
    * ``naive_snapped`` — empirical median snapped to the fixed grid:
      the "naive attempts at rounding" the paper dismisses.  Decent on
      benign data, but its failure probability is pinned to wherever
      the fixed cell boundaries happen to sit — no parameter drives it
      to zero;
    * ``reproducible`` — rQuantile, whose disagreement probability is
      controlled by (tau, rho, samples) by design.
    """
    dom = EfficiencyDomain(bits=12)
    est = ReproducibleQuantileEstimator(domain=dom, tau=0.02, rho=0.05, beta=0.025)
    seed = SeedChain(99).child("ablation")
    atoms = np.array([0.05, 0.2, 0.7, 1.1, 2.5, 8.0])
    probs = np.array([0.1, 0.2, 0.25, 0.2, 0.15, 0.1])
    shapes = {
        "atomic": lambda g: g.choice(atoms, p=probs, size=m),
        "lognormal": lambda g: g.lognormal(0.0, 1.0, size=m),
    }
    rows = []
    for shape, draw in shapes.items():
        for name in ("naive", "naive_snapped", "reproducible"):
            outputs = []
            for r in range(runs):
                sample = draw(np.random.default_rng(500 + r))
                if name == "naive":
                    outputs.append(float(np.quantile(sample, 0.5)))
                elif name == "naive_snapped":
                    outputs.append(
                        dom.decode(dom.encode(float(np.quantile(sample, 0.5))))
                    )
                else:
                    outputs.append(est.quantile(sample, 0.5, seed.child(shape)))
            agree = sum(
                outputs[i] == outputs[j]
                for i in range(runs)
                for j in range(i + 1, runs)
            ) / (runs * (runs - 1) / 2)
            rows.append(
                {
                    "distribution": shape,
                    "estimator": name,
                    "samples": m,
                    "exact_agreement": agree,
                }
            )
    return rows


def test_naive_vs_reproducible(benchmark):
    rows = run_once(benchmark, _naive_vs_reproducible)
    emit_json(
        "E10a_naive_quantile",
        rows,
        "E10a: naive empirical quantile vs. rQuantile — exact cross-run agreement",
    )
    by = {(r["distribution"], r["estimator"]): r["exact_agreement"] for r in rows}
    # Atomic data: everything trivially agrees (including naive).
    assert by[("atomic", "naive")] == 1.0
    assert by[("atomic", "reproducible")] == 1.0
    # Continuous data: naive NEVER agrees exactly (Section 1.1's point);
    # the reproducible estimator recovers substantial agreement.
    assert by[("lognormal", "naive")] == 0.0
    assert by[("lognormal", "reproducible")] >= 0.4
    assert by[("lognormal", "naive_snapped")] >= by[("lognormal", "naive")]


def test_domain_bits_ablation(benchmark):
    rows = run_once(benchmark, exp_ablation_domain_bits, bits_grid=(8, 10, 12, 16))
    emit_json(
        "E10b_domain_bits",
        rows,
        "E10b: domain resolution vs. consistency vs. solution quality",
    )
    planted = {r["domain_bits"]: r for r in rows if r["family"] == "planted_lsg"}
    # Exact answer unanimity degrades from coarse to very fine grids.
    assert planted[8]["unanimity"] >= planted[16]["unanimity"] - 0.05
    # Quality never collapses on the planted family at any resolution,
    # and feasibility holds there throughout.
    for r in rows:
        if r["family"] == "planted_lsg":
            assert r["ratio"] > 0.5 and r["feasible"]
    # On the near-degenerate family, the default 12-bit resolution is
    # feasible; coarser grids may break the EPS premise (recorded above).
    weakly = {r["domain_bits"]: r for r in rows if r["family"] == "weakly_correlated"}
    assert weakly[12]["feasible"] and weakly[16]["feasible"]
