"""Serving-layer throughput: cached vs uncached, serial vs parallel.

One query stream served under four regimes (see
``repro.serve.bench``): per-query ``LCAKP.answer`` (the pre-serving
baseline, one pipeline per query), batched-uncached, batched-cached and
thread-parallel.  All four return bit-identical answers — the
invariance property test pins that — so the table isolates serving
overhead.

Acceptance line: the cached regime must clear 10x the per-query
baseline's queries/sec.  In practice it clears it by orders of
magnitude (a cache hit costs one point query and an O(batch) numpy
pass; the baseline pays m_large + a weighted samples per query).

Writes ``benchmarks/results/SERVE_throughput.{txt,json}`` via the
shared conftest plumbing and the top-level ``BENCH_serve.json``
(``bench-result/v1``) that the CI serve-smoke job validates.
"""

import pathlib

from conftest import emit_json, run_once

from repro.knapsack import generate
from repro.obs.export import write_json
from repro.serve.bench import bench_serve_document, serve_throughput_rows

BENCH_SERVE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"


def test_serve_throughput(benchmark):
    inst = generate("uniform", 5000, seed=0)
    rows = run_once(
        benchmark,
        serve_throughput_rows,
        inst,
        epsilon=0.1,
        seed=7,
        queries=1000,
        batch=100,
        workers=4,
        baseline_queries=20,
    )
    emit_json(
        "SERVE_throughput",
        rows,
        "Serving layer: queries/sec by regime (same answers in all four)",
    )
    write_json(BENCH_SERVE_PATH, bench_serve_document(rows))

    by = {r["mode"]: r for r in rows}
    cached = by["serial_cached"]
    # The headline acceptance ratio: cached batches vs per-query answer.
    assert cached["speedup_vs_per_query"] >= 10.0, rows
    # The cache actually engaged: one pipeline, the rest were hits.
    assert cached["pipelines_run"] == 1
    assert cached["cache_hits"] == 9
    # Batching alone already amortizes; caching must beat it too.
    assert cached["qps"] > by["serial_uncached"]["qps"]
