"""E13 — Ablation: coupon-collector vs. heavy-hitters large-item detection.

A negative-result ablation that *vindicates the paper's design choice*.

Hypothesis tested: Algorithm 2's "keep every sampled item with profit
> eps^2" (coupon mode) might be a cross-run inconsistency source for
items with profits straddling eps^2, and a reproducible heavy-hitters
cutoff (the §5-spirit extension in ``repro.reproducible.heavy_hitters``)
might fix it.

Measured outcome: the opposite, at every practical sample size.

* Coupon mode's only failure event is *never sampling* a large item —
  probability ``(1 - p)^m ~ e^{-p m}``, which is astronomically small
  once ``m >> 1/eps^2`` (the Lemma 4.2 sizing).  Given full collection
  the rule is a deterministic function of the instance: agreement 1.0.
* Heavy-hitters mode must *resolve frequencies* to within its window
  ``tau ~ eps^2/4``, needing ``m ~ 1/(rho * tau * (theta - tau))^2``-ish
  samples — ~10^12 at eps = 0.1.  At calibrated budgets its estimates
  jitter across the cutoff and the output set flips run to run.

Moral (recorded in EXPERIMENTS.md): detection-by-presence is
exponentially easier than detection-by-frequency-comparison, which is
precisely why the paper routes *identity* discovery through coupon
collection and reserves the reproducibility machinery for the
*quantile* estimates, where no presence-style shortcut exists.
"""

from conftest import emit_json, run_once

from repro.access.oracle import QueryOracle
from repro.access.weighted_sampler import WeightedSampler
from repro.core.lca_kp import LCAKP
from repro.core.parameters import LCAParameters
from repro.knapsack import generators as g
from repro.reproducible.domains import EfficiencyDomain
from repro.reproducible.heavy_hitters import heavy_hitters_sample_complexity


def _large_set_agreement(runs: int = 8, n: int = 1200, epsilon: float = 0.1):
    inst = g.borderline_large(n, seed=13, epsilon=epsilon, n_borderline=8)
    params = LCAParameters.calibrated(
        epsilon,
        domain=EfficiencyDomain(bits=12),
        max_nrq=20_000,
        max_m_large=20_000,
    )
    rows = []
    for mode in ("coupon", "heavy_hitters"):
        lca = LCAKP(
            WeightedSampler(inst),
            QueryOracle(inst),
            epsilon,
            seed=5,
            params=params,
            large_item_mode=mode,
        )
        sets = [frozenset(lca.run_pipeline(nonce=700 + r).large_items) for r in range(runs)]
        pairs = [(i, j) for i in range(runs) for j in range(i + 1, runs)]
        agreement = sum(sets[i] == sets[j] for i, j in pairs) / len(pairs)
        sizes = sorted(len(s) for s in sets)
        rows.append(
            {
                "mode": mode,
                "samples_m": params.m_large,
                "exact_large_set_agreement": agreement,
                "distinct_sets": len(set(sets)),
                "set_size_min": sizes[0],
                "set_size_max": sizes[-1],
                "hh_samples_needed": heavy_hitters_sample_complexity(
                    epsilon * epsilon, 0.1
                )
                if mode == "heavy_hitters"
                else None,
            }
        )
    return rows


def test_coupon_beats_heavy_hitters_for_identity_detection(benchmark):
    rows = run_once(benchmark, _large_set_agreement)
    emit_json(
        "E13_heavy_hitters",
        rows,
        "E13 (ablation): large-item set agreement — the paper's coupon rule wins",
    )
    by = {r["mode"]: r for r in rows}
    # The paper's rule: perfectly consistent at calibrated sample sizes.
    assert by["coupon"]["exact_large_set_agreement"] == 1.0
    assert by["coupon"]["distinct_sets"] == 1
    # Frequency-comparison detection cannot keep up at these budgets...
    assert (
        by["heavy_hitters"]["exact_large_set_agreement"]
        < by["coupon"]["exact_large_set_agreement"]
    )
    # ...and its theoretical requirement is astronomically larger than m.
    assert by["heavy_hitters"]["hh_samples_needed"] > 100 * by["heavy_hitters"]["samples_m"]
