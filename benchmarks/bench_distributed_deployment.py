"""E16 — the deployment story: Definitions 2.3/2.4 at cluster scale.

The paper motivates LCAs with "hugely distributed algorithms, where
independent instances provide consistent access to a common output
solution" (Section 1).  This bench simulates exactly that across a
grid of deployment shapes — worker counts, routing policies, crash
rates, Zipf query traffic — and audits the model's promises:

* consistency rate of repeated queries answered by *different* workers;
* crash tolerance: statelessness makes retries just more runs;
* load/throughput characteristics per routing policy.
"""

import numpy as np
from conftest import emit_json, run_once

from repro.core.parameters import LCAParameters
from repro.distributed.cluster import ClusterSimulation
from repro.distributed.metrics import compute_metrics
from repro.distributed.workloads import zipf_queries
from repro.knapsack import generators as g
from repro.reproducible.domains import EfficiencyDomain


def _deployment_grid(queries: int = 60):
    inst = g.efficiency_tiers(1500, seed=5, tiers=8)
    params = LCAParameters.calibrated(
        0.1, domain=EfficiencyDomain(bits=10), max_nrq=8_000, max_m_large=8_000
    )
    rows = []
    for workers, routing, crash_rate in (
        (2, "round_robin", 0.0),
        (8, "round_robin", 0.0),
        (8, "least_loaded", 0.0),
        (8, "random", 0.0),
        (8, "least_loaded", 0.33),
    ):
        sim = ClusterSimulation(
            inst,
            0.1,
            seed=31337,
            params=params,
            workers=workers,
            routing=routing,
            arrival_rate=300.0,
            crash_rate=crash_rate,
            rng_seed=3,
        )
        items = zipf_queries(inst.n, queries, np.random.default_rng(11))
        report = sim.run(queries, items=items)
        metrics = compute_metrics(report, workers=workers)
        rows.append(
            {
                "workers": workers,
                "routing": routing,
                "crash_rate": crash_rate,
                "consistency": report.consistency_rate,
                "contested": len(report.contested_items),
                "crashes": report.total_crashes,
                "throughput_qps": metrics.throughput,
                "mean_latency_ms": report.mean_latency * 1000,
                "utilization": metrics.utilization,
                "repeat_coverage": metrics.repeat_coverage,
            }
        )
    return rows


def test_distributed_deployment(benchmark):
    rows = run_once(benchmark, _deployment_grid)
    emit_json(
        "E16_distributed",
        rows,
        "E16: simulated deployments — consistency, crashes, throughput",
    )
    # The model's headline: full consistency in every configuration,
    # including under a 33% crash rate — workers share only the seed.
    for row in rows:
        assert row["consistency"] == 1.0, row
        assert row["repeat_coverage"] > 0.1  # the audit had real repeats
    # Crash injection actually fired in the chaos row.
    chaos = [r for r in rows if r["crash_rate"] > 0][0]
    assert chaos["crashes"] > 0
    # More workers => more parallel service => higher throughput.
    two = [r for r in rows if r["workers"] == 2][0]
    eight = [r for r in rows if r["workers"] == 8 and r["routing"] == "round_robin"][0]
    assert eight["throughput_qps"] >= two["throughput_qps"]
